//! IR optimisation: a fixed-point pass pipeline over SSA-form kernels.
//!
//! These passes model the NVCC behaviour the paper leans on in §IV-A: "the
//! naive version may have many conditional statements in the source code, but
//! many of them share common sub-expressions that can be optimized by the
//! NVCC compiler". Running the same passes over naive and ISP variants keeps
//! the instruction-count comparison honest — and the `ablation_cse` /
//! `ablation_opt` benches flip passes off to show how large the
//! *un*-optimised gap would look.
//!
//! The pipeline (driven by [`optimize`] / [`optimize_with_stats`]) runs each
//! enabled pass as `fn(&mut Kernel) -> bool` and, in [`OptConfig::pipeline`]
//! mode, iterates the whole sequence until no pass reports a change (bounded
//! by [`MAX_OPT_ITERATIONS`]):
//!
//! 1. **copy propagation** — `mov` is pure renaming under SSA;
//! 2. **constant folding + algebraic simplification** — every rewrite must be
//!    bit-identical to the interpreter's op semantics (`tests/
//!    fold_equivalence.rs` checks this differentially); F32 identities that
//!    are *not* bit-exact (`x * 0.0 → 0.0`, `x + 0.0 → x`, …) are gated
//!    behind [`OptConfig::fast_math`] and off by default;
//! 3. **strength reduction** — `x * 2^k → x << k` (exact for wrapping i32);
//!    `x / 2^k → x >> k` and `x % 2^k → x & (2^k-1)` only when `x` is
//!    *provably non-negative* (arithmetic shift rounds toward −∞ while `Div`
//!    rounds toward zero), using a small dataflow proof over the SSA defs;
//! 4. **value numbering** — either the legacy local (per-block) CSE or
//!    dominator-aware **global value numbering** ([`OptConfig::gvn`]): blocks
//!    are visited in reverse post-order and value tables are consulted
//!    through the immediate-dominator chain from [`crate::cfg::Cfg::idom`].
//!    Reuse obeys the rematerialization windows below;
//! 5. **dead-code elimination** — global (cross-block) used-register
//!    worklist; never touches stores, loads, barriers, or registers feeding
//!    terminators;
//! 6. **CFG simplification** — equal-target and constant-predicate branch
//!    flattening, jump threading through empty forwarding blocks, merging
//!    `br → empty ret-block` into `ret`, and unreachable-block removal (with
//!    `BlockId` renumbering; `validate` rejects unreachable blocks).
//!
//! The builder produces SSA-form code (every virtual register has exactly
//! one definition, uses are dominated by it, and — with no phi nodes — every
//! value is loop-invariant), which is what makes the global substitution
//! maps and cross-block value reuse sound.

use crate::cfg::Cfg;
use crate::instr::{BinOp, CmpOp, Instr, Operand, SReg, Terminator, UnOp};
use crate::kernel::{BlockId, Kernel};
use crate::types::{Ty, VReg};
use std::collections::HashMap;

/// Which passes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Constant folding + algebraic identities.
    pub fold: bool,
    /// Copy propagation (`mov` elimination).
    pub copy_prop: bool,
    /// Local (per-block) common-subexpression elimination.
    pub cse: bool,
    /// Dominator-aware global value numbering (cross-block CSE). When set,
    /// supersedes `cse`.
    pub gvn: bool,
    /// Strength reduction (`mul`/`div`/`rem` by powers of two to shifts and
    /// masks; division only under a non-negativity proof).
    pub strength_reduce: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// CFG simplification (branch flattening, jump threading, unreachable
    /// block removal).
    pub cfg_simplify: bool,
    /// Iterate the pass sequence to a fixed point (bounded by
    /// [`MAX_OPT_ITERATIONS`]); otherwise run it once.
    pub fixed_point: bool,
    /// Allow F32 rewrites that are value-preserving only under fast-math
    /// assumptions (`x * 0.0 → 0.0`, `x + 0.0 → x`, `min(x,x) → x`, …).
    /// These diverge bit-wise from the interpreter for NaN payloads,
    /// signalling NaNs and `-0.0`, so they are **off** in every default
    /// configuration; `tests/fold_equivalence.rs` documents the exact set.
    pub fast_math: bool,
    /// CSE **rematerialization window**: a previously computed value is only
    /// reused when it was defined at most this many (kept) instructions ago;
    /// older values are recomputed. This mirrors production GPU compilers,
    /// which deliberately rematerialize cheap address arithmetic rather than
    /// hold dozens of resolved border coordinates in registers across a
    /// 169-tap unrolled window — unbounded CSE would understate the naive
    /// variant's instruction count AND overstate everyone's register usage.
    pub cse_window: usize,
    /// Reuse window for global loads, which compilers keep in registers far
    /// more aggressively than recomputable arithmetic (rematerializing a
    /// load is a memory access). Must be at least `cse_window` so that the
    /// load-reuse behaviour of code variants with different amounts of
    /// interleaved arithmetic stays comparable; constructors clamp it up to
    /// `cse_window` and [`optimize`] debug-asserts the invariant.
    pub cse_window_loads: usize,
}

/// Default rematerialization window (instructions).
pub const DEFAULT_CSE_WINDOW: usize = 120;

/// Default load-reuse window (instructions).
pub const DEFAULT_CSE_WINDOW_LOADS: usize = 250;

/// Upper bound on pipeline iterations in `fixed_point` mode. Every pass is
/// monotone (instructions are only removed or rewritten toward a normal
/// form), so real kernels converge in a handful of iterations; the cap is a
/// safety net, and [`OptStats::reached_fixed_point`] reports whether the
/// pipeline actually converged.
pub const MAX_OPT_ITERATIONS: u64 = 16;

impl OptConfig {
    /// Enforce `cse_window_loads >= cse_window` (see the field docs).
    fn clamped(mut self) -> Self {
        if self.cse_window_loads < self.cse_window {
            self.cse_window_loads = self.cse_window;
        }
        self
    }

    /// The full fixed-point pipeline — the default compilation mode,
    /// mirroring `nvcc -O3`: folding, copy propagation, strength reduction,
    /// dominator-aware GVN, DCE and CFG simplification iterated to a fixed
    /// point. Fast-math rewrites stay off so every rewrite is bit-identical
    /// to the interpreter.
    pub fn pipeline() -> Self {
        OptConfig {
            fold: true,
            copy_prop: true,
            cse: false,
            gvn: true,
            strength_reduce: true,
            dce: true,
            cfg_simplify: true,
            fixed_point: true,
            fast_math: false,
            cse_window: DEFAULT_CSE_WINDOW,
            cse_window_loads: DEFAULT_CSE_WINDOW_LOADS,
        }
        .clamped()
    }

    /// The legacy single-iteration mode: folding + local CSE + DCE, no
    /// cross-block passes. Kept for ablations against [`OptConfig::pipeline`].
    pub fn full() -> Self {
        OptConfig {
            fold: true,
            copy_prop: true,
            cse: true,
            gvn: false,
            strength_reduce: false,
            dce: true,
            cfg_simplify: false,
            fixed_point: false,
            fast_math: false,
            cse_window: DEFAULT_CSE_WINDOW,
            cse_window_loads: DEFAULT_CSE_WINDOW_LOADS,
        }
        .clamped()
    }

    /// No optimisation at all.
    pub fn none() -> Self {
        OptConfig {
            fold: false,
            copy_prop: false,
            cse: false,
            gvn: false,
            strength_reduce: false,
            dce: false,
            cfg_simplify: false,
            fixed_point: false,
            fast_math: false,
            cse_window: 0,
            cse_window_loads: 0,
        }
    }

    /// CSE disabled, folding/DCE on — the `ablation_cse` configuration.
    pub fn no_cse() -> Self {
        OptConfig {
            cse: false,
            gvn: false,
            cse_window: 0,
            cse_window_loads: 0,
            ..Self::full()
        }
    }

    /// Unbounded local CSE (no rematerialization) — for tests and ablations.
    pub fn unbounded_cse() -> Self {
        OptConfig {
            cse_window: usize::MAX,
            cse_window_loads: usize::MAX,
            ..Self::full()
        }
        .clamped()
    }

    /// Enable the fast-math rewrite set on top of `self`.
    pub fn with_fast_math(mut self) -> Self {
        self.fast_math = true;
        self
    }

    /// Override both rematerialization windows, clamping
    /// `cse_window_loads` up to `cse_window` to preserve the invariant.
    pub fn with_windows(mut self, cse_window: usize, cse_window_loads: usize) -> Self {
        self.cse_window = cse_window;
        self.cse_window_loads = cse_window_loads;
        self.clamped()
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::pipeline()
    }
}

/// Per-pass statistics from one [`optimize_with_stats`] run. All `*_removed`
/// fields count *static* instructions (terminators included, as in
/// [`Kernel::static_len`]) removed by that pass, accumulated across
/// fixed-point iterations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Pipeline iterations executed (1 when `fixed_point` is off).
    pub iterations: u64,
    /// Whether the last iteration made no change (the output is a fixed
    /// point of the pass sequence).
    pub reached_fixed_point: bool,
    /// Static instruction count before optimisation.
    pub before_instrs: u64,
    /// Static instruction count after optimisation.
    pub after_instrs: u64,
    /// Instructions removed by copy propagation.
    pub copy_prop_removed: u64,
    /// Instructions removed by constant folding + algebraic simplification.
    pub fold_removed: u64,
    /// Instructions rewritten in place by strength reduction (count, not a
    /// removal — a `mul` becomes a `shl`).
    pub strength_rewrites: u64,
    /// Instructions removed by value numbering (local CSE or GVN).
    pub vn_removed: u64,
    /// Instructions removed by dead-code elimination.
    pub dce_removed: u64,
    /// Instructions (including terminators of deleted blocks) removed by CFG
    /// simplification.
    pub cfg_removed: u64,
}

impl OptStats {
    /// Net static instructions removed over the whole run.
    pub fn removed_total(&self) -> u64 {
        self.before_instrs.saturating_sub(self.after_instrs)
    }
}

/// Run the configured passes over `kernel`, returning the optimised kernel.
pub fn optimize(kernel: &Kernel, config: OptConfig) -> Kernel {
    optimize_with_stats(kernel, config).0
}

/// Like [`optimize`], also returning per-pass statistics.
pub fn optimize_with_stats(kernel: &Kernel, config: OptConfig) -> (Kernel, OptStats) {
    debug_assert!(
        config.cse_window_loads >= config.cse_window,
        "OptConfig invariant violated: cse_window_loads ({}) < cse_window ({}); \
         use the constructors or with_windows(), which clamp",
        config.cse_window_loads,
        config.cse_window
    );
    // Belt-and-braces for release builds handed a hand-rolled config: the
    // effective load window is never below the arithmetic window.
    let window = config.cse_window;
    let window_loads = config.cse_window_loads.max(config.cse_window);

    let mut k = kernel.clone();
    let mut stats = OptStats {
        before_instrs: k.static_len() as u64,
        ..OptStats::default()
    };
    loop {
        let mut changed = false;
        if config.copy_prop {
            let before = k.static_len() as u64;
            changed |= pass_copy_prop(&mut k);
            stats.copy_prop_removed += before.saturating_sub(k.static_len() as u64);
        }
        if config.fold {
            let before = k.static_len() as u64;
            changed |= pass_fold(&mut k, config.fast_math);
            stats.fold_removed += before.saturating_sub(k.static_len() as u64);
        }
        if config.strength_reduce {
            let n = pass_strength_reduce(&mut k);
            stats.strength_rewrites += n;
            changed |= n > 0;
        }
        if config.gvn || config.cse {
            let before = k.static_len() as u64;
            changed |= pass_value_number(&mut k, config.gvn, window, window_loads);
            stats.vn_removed += before.saturating_sub(k.static_len() as u64);
        }
        if config.dce {
            let before = k.static_len() as u64;
            changed |= pass_dce(&mut k);
            stats.dce_removed += before.saturating_sub(k.static_len() as u64);
        }
        if config.cfg_simplify {
            let before = k.static_len() as u64;
            changed |= pass_cfg_simplify(&mut k);
            stats.cfg_removed += before.saturating_sub(k.static_len() as u64);
        }
        stats.iterations += 1;
        if !changed {
            stats.reached_fixed_point = true;
            break;
        }
        if !config.fixed_point || stats.iterations >= MAX_OPT_ITERATIONS {
            break;
        }
    }
    stats.after_instrs = k.static_len() as u64;
    (k, stats)
}

/// Hashable operand key for value numbering (f32 via bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum OpKey {
    Reg(u32),
    ImmI(i32),
    ImmF(u32),
}

impl OpKey {
    fn of(op: &Operand) -> OpKey {
        match op {
            Operand::Reg(r) => OpKey::Reg(r.index),
            Operand::ImmI(v) => OpKey::ImmI(*v),
            Operand::ImmF(v) => OpKey::ImmF(v.to_bits()),
        }
    }
}

/// Value-numbering key of a pure instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum VnKey {
    Bin(BinOp, Ty, OpKey, OpKey),
    Mad(Ty, OpKey, OpKey, OpKey),
    Un(UnOp, Ty, OpKey),
    Cvt(Ty, OpKey),
    SetP(CmpOp, OpKey, OpKey),
    SelP(Ty, OpKey, OpKey, u32),
    Sreg(SReg),
    LdParam(u32),
    /// Global loads are value-numbered too: generated kernels never store
    /// to a buffer they read (single output store at the end), matching the
    /// `__restrict__` qualifiers Hipacc emits — so identical loads within
    /// the window collapse, as `nvcc` does for restrict-qualified inputs.
    Ld(u32, OpKey),
    /// Texture fetches are read-only by construction: same reuse rule.
    Tex(u32, OpKey, OpKey),
}

/// Resolve an operand through the substitution map (with chaining).
fn resolve(subst: &HashMap<u32, Operand>, op: Operand) -> Operand {
    let mut cur = op;
    let mut hops = 0;
    while let Operand::Reg(r) = cur {
        match subst.get(&r.index) {
            Some(&next) => {
                cur = next;
                hops += 1;
                assert!(hops < 10_000, "substitution cycle");
            }
            None => break,
        }
    }
    cur
}

/// Canonicalise an arithmetic float result exactly like the simulator's
/// `canon_f32`: any NaN becomes the canonical quiet NaN `0x7fffffff` (PTX
/// float-instruction semantics). Folding must produce the same bits the
/// interpreter would at runtime — `tests/fold_equivalence.rs` asserts the
/// two stay in lockstep differentially.
#[inline]
fn canon_f32(v: f32) -> f32 {
    if v.is_nan() {
        f32::from_bits(0x7fff_ffff)
    } else {
        v
    }
}

/// Fold a binary op over two immediates. Every arm performs the *same
/// computation* as the interpreter (`isp-sim`'s `eval_bin_i`/`eval_bin_f`),
/// so the fold is bit-identical for every input — NaN results canonicalise
/// to `0x7fffffff` on both sides, and bit-preserving ops keep payloads —
/// `tests/fold_equivalence.rs` asserts this differentially.
pub fn fold_bin(op: BinOp, ty: Ty, a: &Operand, b: &Operand) -> Option<Operand> {
    match (ty, a, b) {
        (Ty::S32, Operand::ImmI(x), Operand::ImmI(y)) => {
            let (x, y) = (*x, *y);
            let v = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                // Division semantics chosen deliberately: defined as 0 on
                // divide-by-zero so folding matches the interpreter.
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32 & 31),
                BinOp::Shr => x.wrapping_shr(y as u32 & 31),
            };
            Some(Operand::ImmI(v))
        }
        (Ty::F32, Operand::ImmF(x), Operand::ImmF(y)) => {
            let (x, y) = (*x, *y);
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => return None,
            };
            Some(Operand::ImmF(canon_f32(v)))
        }
        _ => None,
    }
}

/// Algebraic identities that replace the instruction with one of its
/// operands (or a constant) *without performing the computation*.
///
/// Integer identities are exact under the wrapping two's-complement
/// semantics the interpreter uses, so they always apply. F32 identities skip
/// a float operation whose rounding/NaN behaviour is observable bit-wise
/// (`-0.0 + 0.0 == +0.0`, `NaN * 0.0 == NaN`, signalling NaNs quiet on any
/// arithmetic op), so they require `fast_math`.
pub fn simplify_bin(
    op: BinOp,
    ty: Ty,
    a: &Operand,
    b: &Operand,
    fast_math: bool,
) -> Option<Operand> {
    let is_zero_i = |o: &Operand| matches!(o, Operand::ImmI(0));
    let is_one_i = |o: &Operand| matches!(o, Operand::ImmI(1));
    // `*f == 0.0` matches both +0.0 and -0.0; that is fine *given fast_math*
    // (x + -0.0 → x is wrong only for signalling NaNs, x * -0.0 → 0.0 is
    // wrong for sign as well — all behind the same gate).
    let is_zero_f = |o: &Operand| matches!(o, Operand::ImmF(f) if *f == 0.0);
    let is_one_f = |o: &Operand| matches!(o, Operand::ImmF(f) if *f == 1.0);
    match ty {
        Ty::S32 => match op {
            BinOp::Add => {
                if is_zero_i(a) {
                    return Some(*b);
                }
                if is_zero_i(b) {
                    return Some(*a);
                }
            }
            BinOp::Sub if is_zero_i(b) => {
                return Some(*a);
            }
            BinOp::Mul => {
                if is_one_i(a) {
                    return Some(*b);
                }
                if is_one_i(b) {
                    return Some(*a);
                }
                if is_zero_i(a) || is_zero_i(b) {
                    return Some(Operand::ImmI(0));
                }
            }
            BinOp::Div if is_one_i(b) => {
                return Some(*a);
            }
            // x % 1 == 0 for every x (wrapping_rem sign follows the
            // dividend; |x % 1| < 1).
            BinOp::Rem if is_one_i(b) => {
                return Some(Operand::ImmI(0));
            }
            BinOp::Min | BinOp::Max if OpKey::of(a) == OpKey::of(b) => {
                return Some(*a);
            }
            BinOp::And | BinOp::Or if OpKey::of(a) == OpKey::of(b) => {
                return Some(*a);
            }
            BinOp::Xor if OpKey::of(a) == OpKey::of(b) => {
                return Some(Operand::ImmI(0));
            }
            BinOp::And if is_zero_i(a) || is_zero_i(b) => {
                return Some(Operand::ImmI(0));
            }
            BinOp::Or | BinOp::Xor if is_zero_i(a) => {
                return Some(*b);
            }
            BinOp::Or | BinOp::Xor if is_zero_i(b) => {
                return Some(*a);
            }
            // Shift amounts are masked to 5 bits by both the interpreter and
            // the fold, so any immediate amount ≡ 0 (mod 32) is an identity.
            BinOp::Shl | BinOp::Shr if matches!(b, Operand::ImmI(v) if v & 31 == 0) => {
                return Some(*a);
            }
            _ => {}
        },
        Ty::F32 if fast_math => match op {
            BinOp::Add => {
                if is_zero_f(a) {
                    return Some(*b);
                }
                if is_zero_f(b) {
                    return Some(*a);
                }
            }
            BinOp::Sub if is_zero_f(b) => {
                return Some(*a);
            }
            BinOp::Mul => {
                if is_one_f(a) {
                    return Some(*b);
                }
                if is_one_f(b) {
                    return Some(*a);
                }
                if is_zero_f(a) || is_zero_f(b) {
                    return Some(Operand::ImmF(0.0));
                }
            }
            BinOp::Div if is_one_f(b) => {
                return Some(*a);
            }
            BinOp::Min | BinOp::Max if OpKey::of(a) == OpKey::of(b) => {
                return Some(*a);
            }
            _ => {}
        },
        // Predicate-typed and/or of a register with itself is exact.
        Ty::Pred => match op {
            BinOp::And | BinOp::Or if OpKey::of(a) == OpKey::of(b) => {
                return Some(*a);
            }
            _ => {}
        },
        _ => {}
    }
    None
}

/// Fold a comparison over two immediates. Bails out (`None`) when either
/// float operand is NaN — the interpreter's unordered-comparison results
/// (`Ne` true, everything else false) are then preserved by keeping the
/// instruction, not by folding it.
pub fn fold_cmp(cmp: CmpOp, a: &Operand, b: &Operand) -> Option<bool> {
    let ord = match (a, b) {
        (Operand::ImmI(x), Operand::ImmI(y)) => x.partial_cmp(y),
        (Operand::ImmF(x), Operand::ImmF(y)) => x.partial_cmp(y),
        _ => return None,
    }?;
    Some(match cmp {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    })
}

/// Fold a unary op over an immediate. Same-computation folds only (see
/// [`fold_bin`]); `Mov` is handled by copy propagation, not here.
pub fn fold_un(op: UnOp, ty: Ty, a: &Operand) -> Option<Operand> {
    match (ty, a) {
        (Ty::S32, Operand::ImmI(v)) => {
            let v = *v;
            let r = match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Abs => v.wrapping_abs(),
                UnOp::Not => !v,
                _ => return None,
            };
            Some(Operand::ImmI(r))
        }
        (Ty::F32, Operand::ImmF(v)) => {
            let v = *v;
            let r = match op {
                // Bit-preserving sign ops keep NaN payloads, like hardware.
                UnOp::Neg => -v,
                UnOp::Abs => v.abs(),
                // Arithmetic ops canonicalise, like every float instruction.
                UnOp::Exp => canon_f32(v.exp()),
                UnOp::Log => canon_f32(v.ln()),
                UnOp::Sqrt => canon_f32(v.sqrt()),
                UnOp::Rsqrt => canon_f32(1.0 / v.sqrt()),
                UnOp::Floor => canon_f32(v.floor()),
                _ => return None,
            };
            Some(Operand::ImmF(r))
        }
        _ => None,
    }
}

/// Copy propagation: `mov dst, a` with matching types is pure renaming under
/// SSA, so every use of `dst` can read `a` directly and the `mov` dies.
fn pass_copy_prop(k: &mut Kernel) -> bool {
    let mut subst: HashMap<u32, Operand> = HashMap::new();
    for b in &k.blocks {
        for i in &b.instrs {
            if let Instr::Un {
                op: UnOp::Mov,
                dst,
                a,
            } = i
            {
                if a.ty() == dst.ty {
                    subst.insert(dst.index, *a);
                }
            }
        }
    }
    if subst.is_empty() {
        return false;
    }
    for b in &mut k.blocks {
        b.instrs.retain(|i| {
            !matches!(i, Instr::Un { op: UnOp::Mov, dst, a } if a.ty() == dst.ty && subst.contains_key(&dst.index))
        });
        for i in &mut b.instrs {
            *i = rewrite_operands(i.clone(), &subst);
        }
        rewrite_terminator_pred(&mut b.terminator, &subst);
    }
    true
}

/// Look up the constant value of a predicate operand, if known.
fn pred_const(const_preds: &HashMap<u32, bool>, op: &Operand) -> Option<bool> {
    match op {
        Operand::Reg(r) => const_preds.get(&r.index).copied(),
        _ => None,
    }
}

/// Constant folding + algebraic simplification, with a global (SSA-sound)
/// substitution map. Constant predicates are *recorded* (collapsing their
/// `SelP`/`CondBr`/boolean-`Bin` consumers) but their defining instructions
/// are kept — DCE removes them once unused, so the kernel stays valid even
/// mid-pipeline.
fn pass_fold(k: &mut Kernel, fast_math: bool) -> bool {
    let mut changed = false;
    let mut subst: HashMap<u32, Operand> = HashMap::new();
    // Predicates that folded to a constant (used to simplify CondBr/SelP).
    let mut const_preds: HashMap<u32, bool> = HashMap::new();

    for b in &mut k.blocks {
        let mut kept: Vec<Instr> = Vec::with_capacity(b.instrs.len());
        for instr in b.instrs.drain(..) {
            let instr = rewrite_operands(instr, &subst);
            match &instr {
                Instr::Bin { op, dst, a, b: rhs } if dst.ty == Ty::Pred => {
                    let (ca, cb) = (pred_const(&const_preds, a), pred_const(&const_preds, rhs));
                    match (op, ca, cb) {
                        (_, Some(x), Some(y)) => {
                            let v = match op {
                                BinOp::And => x && y,
                                BinOp::Or => x || y,
                                BinOp::Xor => x ^ y,
                                _ => unreachable!("validated IR: pred ops are and/or/xor"),
                            };
                            const_preds.insert(dst.index, v);
                        }
                        // One side is the identity element: forward the other.
                        (BinOp::And, Some(true), _)
                        | (BinOp::Or, Some(false), _)
                        | (BinOp::Xor, Some(false), _) => {
                            subst.insert(dst.index, *rhs);
                            changed = true;
                            continue;
                        }
                        (BinOp::And, _, Some(true))
                        | (BinOp::Or, _, Some(false))
                        | (BinOp::Xor, _, Some(false)) => {
                            subst.insert(dst.index, *a);
                            changed = true;
                            continue;
                        }
                        // One side is absorbing: the result is constant.
                        (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => {
                            const_preds.insert(dst.index, false);
                        }
                        (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => {
                            const_preds.insert(dst.index, true);
                        }
                        _ => {
                            if let Some(v) = simplify_bin(*op, dst.ty, a, rhs, fast_math) {
                                subst.insert(dst.index, v);
                                changed = true;
                                continue;
                            }
                        }
                    }
                }
                Instr::Bin { op, dst, a, b: rhs } => {
                    if let Some(v) = fold_bin(*op, dst.ty, a, rhs)
                        .or_else(|| simplify_bin(*op, dst.ty, a, rhs, fast_math))
                    {
                        subst.insert(dst.index, v);
                        changed = true;
                        continue;
                    }
                }
                Instr::Un {
                    op: UnOp::Not,
                    dst,
                    a,
                } if dst.ty == Ty::Pred => {
                    if let Some(v) = pred_const(&const_preds, a) {
                        const_preds.insert(dst.index, !v);
                    }
                }
                Instr::Un { op, dst, a } => {
                    if let Some(v) = fold_un(*op, dst.ty, a) {
                        subst.insert(dst.index, v);
                        changed = true;
                        continue;
                    }
                }
                Instr::Cvt { dst, a } => match (dst.ty, a) {
                    (Ty::F32, Operand::ImmI(v)) => {
                        subst.insert(dst.index, Operand::ImmF(*v as f32));
                        changed = true;
                        continue;
                    }
                    (Ty::S32, Operand::ImmF(v)) => {
                        subst.insert(dst.index, Operand::ImmI(v.round() as i32));
                        changed = true;
                        continue;
                    }
                    _ => {}
                },
                Instr::SetP {
                    cmp,
                    dst,
                    a,
                    b: rhs,
                } => {
                    if let Some(v) = fold_cmp(*cmp, a, rhs) {
                        // Keep the instruction (DCE sweeps it once every
                        // consumer has collapsed) so no register is ever
                        // left dangling.
                        const_preds.insert(dst.index, v);
                    }
                }
                Instr::SelP {
                    dst,
                    a,
                    b: rhs,
                    pred,
                } => {
                    if let Some(&v) = const_preds.get(&pred.index) {
                        subst.insert(dst.index, if v { *a } else { *rhs });
                        changed = true;
                        continue;
                    }
                    if OpKey::of(a) == OpKey::of(rhs) {
                        subst.insert(dst.index, *a);
                        changed = true;
                        continue;
                    }
                }
                _ => {}
            }
            kept.push(instr);
        }
        b.instrs = kept;
        // Rewrite / simplify the terminator.
        let new_t = match b.terminator.clone() {
            Terminator::CondBr {
                pred,
                if_true,
                if_false,
            } => {
                let pred = match resolve(&subst, Operand::Reg(pred)) {
                    Operand::Reg(r) => r,
                    _ => pred,
                };
                if let Some(&v) = const_preds.get(&pred.index) {
                    Terminator::Br {
                        target: if v { if_true } else { if_false },
                    }
                } else if if_true == if_false {
                    Terminator::Br { target: if_true }
                } else {
                    Terminator::CondBr {
                        pred,
                        if_true,
                        if_false,
                    }
                }
            }
            t => t,
        };
        if new_t != b.terminator {
            b.terminator = new_t;
            changed = true;
        }
    }
    changed
}

/// Registers provably non-negative in every execution, via a fixed-point
/// dataflow over the SSA defs. Deliberately conservative: `Add`/`Mul` can
/// wrap, `Abs` of `i32::MIN` is negative, loads/params are unknown.
fn nonneg_regs(k: &Kernel) -> Vec<bool> {
    let mut nn = vec![false; k.num_vregs as usize];
    loop {
        let mut changed = false;
        for b in &k.blocks {
            for i in &b.instrs {
                let op_nn = |o: &Operand| match o {
                    Operand::Reg(r) => nn[r.index as usize],
                    Operand::ImmI(v) => *v >= 0,
                    Operand::ImmF(_) => false,
                };
                let (dst, v) = match i {
                    // Hardware coordinates are non-negative by definition.
                    Instr::Sreg { dst, .. } => (dst, true),
                    Instr::Bin { op, dst, a, b } if dst.ty == Ty::S32 => {
                        let v = match op {
                            // Sign bit clears if either operand's does.
                            BinOp::And => op_nn(a) || op_nn(b),
                            BinOp::Max => op_nn(a) || op_nn(b),
                            BinOp::Or | BinOp::Xor | BinOp::Min => op_nn(a) && op_nn(b),
                            // Arithmetic shift right preserves a clear sign.
                            BinOp::Shr => op_nn(a),
                            // x/y ≥ 0 when both ≥ 0 (0 on divide-by-zero);
                            // x%y follows the dividend's sign (0 on y == 0).
                            BinOp::Div => op_nn(a) && op_nn(b),
                            BinOp::Rem => op_nn(a),
                            // Add/Sub/Mul/Shl can wrap into the sign bit.
                            _ => false,
                        };
                        (dst, v)
                    }
                    Instr::SelP { dst, a, b, .. } if dst.ty == Ty::S32 => {
                        (dst, op_nn(a) && op_nn(b))
                    }
                    Instr::Un {
                        op: UnOp::Mov,
                        dst,
                        a,
                    } if dst.ty == Ty::S32 => (dst, op_nn(a)),
                    _ => continue,
                };
                if v && !nn[dst.index as usize] {
                    nn[dst.index as usize] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    nn
}

/// Strength reduction: rewrite power-of-two multiplies to shifts (exact for
/// wrapping i32), and power-of-two divides/remainders to arithmetic shifts /
/// masks **only** when the dividend is provably non-negative — `>>` rounds
/// toward −∞ while `Div` rounds toward zero, so they disagree on negative
/// inputs. Returns the number of instructions rewritten.
fn pass_strength_reduce(k: &mut Kernel) -> u64 {
    let nn = nonneg_regs(k);
    let reg_nn = |o: &Operand| match o {
        Operand::Reg(r) => nn[r.index as usize],
        Operand::ImmI(v) => *v >= 0,
        Operand::ImmF(_) => false,
    };
    // Powers of two ≥ 2 (1 is an identity handled by simplify_bin).
    let pow2 = |v: i32| -> Option<i32> {
        (v >= 2 && (v & (v - 1)) == 0).then(|| v.trailing_zeros() as i32)
    };
    let mut rewritten = 0u64;
    for blk in &mut k.blocks {
        for i in &mut blk.instrs {
            let Instr::Bin { op, dst, a, b } = i else {
                continue;
            };
            if dst.ty != Ty::S32 {
                continue;
            }
            match op {
                BinOp::Mul => {
                    // x * 2^k → x << k (either operand may be the constant).
                    let (x, k2) = match (&*a, &*b) {
                        (_, Operand::ImmI(v)) if pow2(*v).is_some() => (*a, pow2(*v).unwrap()),
                        (Operand::ImmI(v), _) if pow2(*v).is_some() => (*b, pow2(*v).unwrap()),
                        _ => continue,
                    };
                    *op = BinOp::Shl;
                    *a = x;
                    *b = Operand::ImmI(k2);
                    rewritten += 1;
                }
                BinOp::Div => {
                    if let Operand::ImmI(v) = *b {
                        if let Some(k2) = pow2(v) {
                            if reg_nn(a) {
                                *op = BinOp::Shr;
                                *b = Operand::ImmI(k2);
                                rewritten += 1;
                            }
                        }
                    }
                }
                BinOp::Rem => {
                    if let Operand::ImmI(v) = *b {
                        if pow2(v).is_some() && reg_nn(a) {
                            *op = BinOp::And;
                            *b = Operand::ImmI(v - 1);
                            rewritten += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    rewritten
}

/// Value-numbering key of `instr` plus whether it is a load (loads use the
/// wider reuse window).
fn vn_key(instr: &Instr) -> Option<(VnKey, bool)> {
    match instr {
        Instr::Bin { op, dst, a, b } => {
            let (ka, kb) = canonical_pair(*op, a, b);
            Some((VnKey::Bin(*op, dst.ty, ka, kb), false))
        }
        Instr::Mad { dst, a, b, c } => {
            let mut ab = [OpKey::of(a), OpKey::of(b)];
            ab.sort();
            Some((VnKey::Mad(dst.ty, ab[0], ab[1], OpKey::of(c)), false))
        }
        Instr::Un { op, dst, a } => Some((VnKey::Un(*op, dst.ty, OpKey::of(a)), false)),
        Instr::Cvt { dst, a } => Some((VnKey::Cvt(dst.ty, OpKey::of(a)), false)),
        Instr::SetP { cmp, a, b, .. } => {
            // Canonicalise using the swapped comparison.
            let (ka, kb) = (OpKey::of(a), OpKey::of(b));
            let key = if kb < ka {
                VnKey::SetP(cmp.swapped(), kb, ka)
            } else {
                VnKey::SetP(*cmp, ka, kb)
            };
            Some((key, false))
        }
        Instr::SelP { dst, a, b, pred } => Some((
            VnKey::SelP(dst.ty, OpKey::of(a), OpKey::of(b), pred.index),
            false,
        )),
        Instr::Sreg { sreg, .. } => Some((VnKey::Sreg(*sreg), false)),
        Instr::LdParam { index, .. } => Some((VnKey::LdParam(*index), false)),
        Instr::Ld { buf, addr, .. } => Some((VnKey::Ld(*buf, OpKey::of(addr)), true)),
        Instr::Tex { buf, x, y, .. } => Some((VnKey::Tex(*buf, OpKey::of(x), OpKey::of(y)), true)),
        Instr::St { .. } | Instr::Lds { .. } | Instr::Sts { .. } | Instr::Bar => None,
    }
}

/// Value numbering with the global (SSA-sound) substitution map.
///
/// `global == false` is the legacy local CSE: one value table per block,
/// positions counted within the block. `global == true` is dominator-aware
/// GVN: blocks are visited in reverse post-order (so every dominator is
/// visited before the blocks it dominates), lookups walk the
/// immediate-dominator chain, and positions are counted globally so the
/// rematerialization windows span block boundaries. With no phi nodes every
/// SSA value is loop-invariant, so reusing a dominating definition is always
/// sound.
fn pass_value_number(k: &mut Kernel, global: bool, window: usize, window_loads: usize) -> bool {
    let mut changed = false;
    let mut subst: HashMap<u32, Operand> = HashMap::new();
    let n = k.blocks.len();
    let (order, idom) = if global {
        let cfg = Cfg::new(k);
        (cfg.rpo(), cfg.idom())
    } else {
        ((0..n).map(|i| BlockId(i as u32)).collect(), vec![None; n])
    };
    // Value tables: key -> (register, kept-position of its definition).
    let mut tables: Vec<HashMap<VnKey, (VReg, usize)>> = vec![HashMap::new(); n];
    let mut pos: usize = 0;
    for bid in order {
        let bi = bid.0 as usize;
        if !global {
            pos = 0; // local windows are measured within the block
        }
        let block = &mut k.blocks[bi];
        let mut kept: Vec<Instr> = Vec::with_capacity(block.instrs.len());
        for instr in block.instrs.drain(..) {
            let instr = rewrite_operands(instr, &subst);
            if let Some((key, is_load)) = vn_key(&instr) {
                let dst = instr
                    .dst()
                    .expect("numbered instructions define a register");
                let w = if is_load { window_loads } else { window };
                // Find the nearest dominating definition of this value; a
                // stale (out-of-window) one shadows farther ones, forcing
                // rematerialization exactly as the local pass does.
                let mut found = None;
                let mut cur = Some(bid);
                while let Some(c) = cur {
                    if let Some(&(prev, def_pos)) = tables[c.0 as usize].get(&key) {
                        if pos.saturating_sub(def_pos) <= w {
                            found = Some(prev);
                        }
                        break;
                    }
                    cur = if global { idom[c.0 as usize] } else { None };
                }
                if let Some(prev) = found {
                    subst.insert(dst.index, Operand::Reg(prev));
                    changed = true;
                    continue;
                }
                tables[bi].insert(key, (dst, pos));
            }
            kept.push(instr);
            pos += 1;
        }
        block.instrs = kept;
    }
    if !subst.is_empty() {
        for b in &mut k.blocks {
            rewrite_terminator_pred(&mut b.terminator, &subst);
        }
    }
    changed
}

fn canonical_pair(op: BinOp, a: &Operand, b: &Operand) -> (OpKey, OpKey) {
    let (ka, kb) = (OpKey::of(a), OpKey::of(b));
    if op.commutative() && kb < ka {
        (kb, ka)
    } else {
        (ka, kb)
    }
}

/// Point a `CondBr` predicate at its substituted register, if any.
fn rewrite_terminator_pred(t: &mut Terminator, subst: &HashMap<u32, Operand>) {
    if let Terminator::CondBr { pred, .. } = t {
        if let Operand::Reg(r) = resolve(subst, Operand::Reg(*pred)) {
            *pred = r;
        }
    }
}

fn rewrite_operands(instr: Instr, subst: &HashMap<u32, Operand>) -> Instr {
    let f = |op: Operand| resolve(subst, op);
    let fr = |r: VReg| match resolve(subst, Operand::Reg(r)) {
        Operand::Reg(nr) => nr,
        _ => r, // predicate folded to constant; handled by caller
    };
    match instr {
        Instr::Bin { op, dst, a, b } => Instr::Bin {
            op,
            dst,
            a: f(a),
            b: f(b),
        },
        Instr::Mad { dst, a, b, c } => Instr::Mad {
            dst,
            a: f(a),
            b: f(b),
            c: f(c),
        },
        Instr::Un { op, dst, a } => Instr::Un { op, dst, a: f(a) },
        Instr::Cvt { dst, a } => Instr::Cvt { dst, a: f(a) },
        Instr::SetP { cmp, dst, a, b } => Instr::SetP {
            cmp,
            dst,
            a: f(a),
            b: f(b),
        },
        Instr::SelP { dst, a, b, pred } => Instr::SelP {
            dst,
            a: f(a),
            b: f(b),
            pred: fr(pred),
        },
        Instr::Sreg { .. } | Instr::LdParam { .. } => instr,
        Instr::Ld { dst, buf, addr } => Instr::Ld {
            dst,
            buf,
            addr: f(addr),
        },
        Instr::Tex { dst, buf, x, y } => Instr::Tex {
            dst,
            buf,
            x: f(x),
            y: f(y),
        },
        Instr::St { buf, addr, val } => Instr::St {
            buf,
            addr: f(addr),
            val: f(val),
        },
        Instr::Lds { dst, addr } => Instr::Lds { dst, addr: f(addr) },
        Instr::Sts { addr, val } => Instr::Sts {
            addr: f(addr),
            val: f(val),
        },
        Instr::Bar => Instr::Bar,
    }
}

/// Remove pure instructions whose destination is never read (worklist to a
/// fixpoint so chains of dead computations all disappear). The used-register
/// map is global, so this is cross-block by construction; side-effecting
/// instructions (`st`/`ld`/`tex`/`lds`/`sts`/`bar`) and registers feeding
/// any block's terminator always survive.
fn pass_dce(k: &mut Kernel) -> bool {
    let mut any = false;
    loop {
        let mut used = vec![false; k.num_vregs as usize];
        for b in &k.blocks {
            for i in &b.instrs {
                for s in i.sources() {
                    used[s.index as usize] = true;
                }
            }
            if let Some(p) = b.terminator.pred() {
                used[p.index as usize] = true;
            }
        }
        let mut removed = false;
        for b in &mut k.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|i| {
                if !i.is_pure() {
                    return true;
                }
                match i.dst() {
                    Some(d) => used[d.index as usize],
                    None => true,
                }
            });
            removed |= b.instrs.len() != before;
        }
        any |= removed;
        if !removed {
            break;
        }
    }
    any
}

/// CFG simplification:
/// 1. collapse `cond_br p, T, T` to `br T`;
/// 2. thread jumps through empty forwarding blocks (`X: br Y` with no
///    instructions — every edge into `X` is redirected to `Y`);
/// 3. merge `br X` into `ret` when `X` is an empty `ret` block;
/// 4. remove blocks left unreachable (renumbering `BlockId`s, since
///    `validate` treats unreachable blocks as errors).
///
/// Execution semantics are preserved exactly — only branch hops disappear —
/// but block ids shift, so anything holding pre-optimisation `BlockId`s
/// (e.g. region paths) must re-resolve them by label afterwards.
fn pass_cfg_simplify(k: &mut Kernel) -> bool {
    let mut changed = false;
    let n = k.blocks.len();

    // (1) Equal-target conditional branches never diverge.
    for b in &mut k.blocks {
        if let Terminator::CondBr {
            if_true, if_false, ..
        } = b.terminator
        {
            if if_true == if_false {
                b.terminator = Terminator::Br { target: if_true };
                changed = true;
            }
        }
    }

    // (2) Jump threading. `fwd[x] = Some(y)` when block x is an empty
    // `br y` (x != y). Chains are resolved with a hop cap so that a cycle of
    // empty blocks (an intentional infinite loop) is left alone.
    let fwd: Vec<Option<BlockId>> = k
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| match (&b.instrs[..], &b.terminator) {
            ([], Terminator::Br { target }) if target.0 as usize != i => Some(*target),
            _ => None,
        })
        .collect();
    let resolve_fwd = |mut t: BlockId| -> BlockId {
        let mut hops = 0;
        while let Some(next) = fwd[t.0 as usize] {
            if hops >= n {
                break;
            }
            t = next;
            hops += 1;
        }
        t
    };
    for b in &mut k.blocks {
        match &mut b.terminator {
            Terminator::Br { target } => {
                let r = resolve_fwd(*target);
                if r != *target {
                    *target = r;
                    changed = true;
                }
            }
            Terminator::CondBr {
                if_true, if_false, ..
            } => {
                let (rt, rf) = (resolve_fwd(*if_true), resolve_fwd(*if_false));
                if rt != *if_true || rf != *if_false {
                    *if_true = rt;
                    *if_false = rf;
                    changed = true;
                }
                if rt == rf {
                    b.terminator = Terminator::Br { target: rt };
                }
            }
            Terminator::Ret => {}
        }
    }

    // (3) A branch to an empty `ret` block is itself a `ret` — but only when
    // that block has no other predecessors, so the rewrite leaves it
    // unreachable and step (4) removes it. Merging one edge into a *shared*
    // ret block would leave the block alive in the stream (and in region
    // paths) while the rewritten warp no longer executes its `Ret`,
    // breaking the exactness of the static per-region model.
    let empty_ret: Vec<bool> = k
        .blocks
        .iter()
        .map(|b| b.instrs.is_empty() && matches!(b.terminator, Terminator::Ret))
        .collect();
    let mut pred_count = vec![0u32; n];
    for b in &k.blocks {
        match b.terminator {
            Terminator::Br { target } => pred_count[target.0 as usize] += 1,
            Terminator::CondBr {
                if_true, if_false, ..
            } => {
                pred_count[if_true.0 as usize] += 1;
                pred_count[if_false.0 as usize] += 1;
            }
            Terminator::Ret => {}
        }
    }
    for b in &mut k.blocks {
        if let Terminator::Br { target } = b.terminator {
            let t = target.0 as usize;
            if empty_ret[t] && t != 0 && pred_count[t] == 1 {
                b.terminator = Terminator::Ret;
                changed = true;
            }
        }
    }

    // (4) Drop unreachable blocks and renumber.
    let cfg = Cfg::new(k);
    if cfg.reachable.iter().any(|&r| !r) {
        let mut remap: Vec<Option<BlockId>> = vec![None; n];
        let mut next = 0u32;
        for (slot, &reachable) in remap.iter_mut().zip(&cfg.reachable) {
            if reachable {
                *slot = Some(BlockId(next));
                next += 1;
            }
        }
        let mut old = std::mem::take(&mut k.blocks);
        for (i, mut b) in old.drain(..).enumerate() {
            if remap[i].is_none() {
                continue;
            }
            let m = |t: BlockId| remap[t.0 as usize].expect("successor of reachable block");
            b.terminator = match b.terminator {
                Terminator::Br { target } => Terminator::Br { target: m(target) },
                Terminator::CondBr {
                    pred,
                    if_true,
                    if_false,
                } => Terminator::CondBr {
                    pred,
                    if_true: m(if_true),
                    if_false: m(if_false),
                },
                Terminator::Ret => Terminator::Ret,
            };
            k.blocks.push(b);
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::cost::{InstrCategory, InstrHistogram};
    use crate::instr::SReg;

    #[test]
    fn cse_removes_duplicate_address_checks() {
        // Mimic two pixel accesses both clamping the same x coordinate.
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let c2 = b.bin(BinOp::Max, Ty::S32, x, 0i32); // duplicate
        let a1 = b.bin(BinOp::Add, Ty::S32, c1, 1i32);
        let a2 = b.bin(BinOp::Add, Ty::S32, c2, 1i32); // becomes duplicate after CSE
        let v1 = b.ld(Ty::F32, 0, a1);
        let v2 = b.ld(Ty::F32, 0, a2);
        let s = b.bin(BinOp::Add, Ty::F32, v1, v2);
        b.st(1, a1, s);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Max), 1, "duplicate max must be CSE'd");
        assert_eq!(h.get(InstrCategory::Add), 2, "one address add + float add");
        assert_eq!(
            h.get(InstrCategory::Ld),
            1,
            "identical restrict-loads collapse"
        );
    }

    #[test]
    fn no_cse_config_keeps_duplicates() {
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let c2 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let v1 = b.ld(Ty::F32, 0, c1);
        let v2 = b.ld(Ty::F32, 0, c2);
        let s = b.bin(BinOp::Add, Ty::F32, v1, v2);
        b.st(1, c1, s);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::no_cse());
        assert_eq!(InstrHistogram::of_kernel(&opt).get(InstrCategory::Max), 2);
    }

    #[test]
    fn constant_folding_collapses_immediates() {
        let mut b = IrBuilder::new("k", 1);
        let a = b.bin(BinOp::Add, Ty::S32, 3i32, 4i32); // 7
        let m = b.bin(BinOp::Mul, Ty::S32, a, 2i32); // 14
        b.st(0, m, Operand::ImmF(1.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert_eq!(opt.blocks[0].instrs.len(), 1);
        match &opt.blocks[0].instrs[0] {
            Instr::St { addr, .. } => assert_eq!(*addr, Operand::ImmI(14)),
            other => panic!("expected st, got {other:?}"),
        }
    }

    #[test]
    fn algebraic_identities() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let a = b.bin(BinOp::Add, Ty::S32, x, 0i32); // = x
        let m = b.bin(BinOp::Mul, Ty::S32, a, 1i32); // = x
        b.st(0, m, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        // Only the sreg read and the store survive.
        assert_eq!(opt.blocks[0].instrs.len(), 2);
    }

    #[test]
    fn float_identities_require_fast_math() {
        // x + 0.0 and x * 1.0 must NOT fold by default: they diverge
        // bit-wise from the interpreter for -0.0 / signalling NaNs.
        let build = || {
            let mut b = IrBuilder::new("k", 2);
            let v = b.ld(Ty::F32, 0, 0i32);
            let a = b.bin(BinOp::Add, Ty::F32, v, 0.0f32);
            let m = b.bin(BinOp::Mul, Ty::F32, a, 1.0f32);
            b.st(1, 0i32, m);
            b.ret();
            b.finish()
        };
        let default = optimize(&build(), OptConfig::pipeline());
        let h = InstrHistogram::of_kernel(&default);
        assert_eq!(h.get(InstrCategory::Add), 1, "x+0.0 kept by default");
        assert_eq!(h.get(InstrCategory::Mul), 1, "x*1.0 kept by default");
        let fast = optimize(&build(), OptConfig::pipeline().with_fast_math());
        let h = InstrHistogram::of_kernel(&fast);
        assert_eq!(h.get(InstrCategory::Add), 0, "fast-math folds x+0.0");
        assert_eq!(h.get(InstrCategory::Mul), 0, "fast-math folds x*1.0");
    }

    #[test]
    fn dce_removes_unused_chains() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let dead1 = b.bin(BinOp::Mul, Ty::S32, x, 5i32);
        let _dead2 = b.bin(BinOp::Add, Ty::S32, dead1, 7i32);
        b.st(0, x, Operand::ImmF(2.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert_eq!(opt.blocks[0].instrs.len(), 2); // sreg + st
    }

    #[test]
    fn loads_and_stores_survive_dce() {
        let mut b = IrBuilder::new("k", 2);
        // Load whose result is unused: must NOT be eliminated (may fault /
        // has observable memory behaviour in the performance model).
        let _v = b.ld(Ty::F32, 0, 3i32);
        b.st(1, 0i32, Operand::ImmF(1.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Ld), 1);
        assert_eq!(h.get(InstrCategory::St), 1);
    }

    #[test]
    fn loads_and_stores_survive_pipeline_across_blocks() {
        // Multi-block version: unused loads, stores on both arms of a
        // diamond, and the predicate chain feeding the branch must all
        // survive the full cross-block pipeline (GVN + DCE + CFG simplify).
        let mut b = IrBuilder::new("k", 2);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let done = b.create_block("done");
        let x = b.sreg(SReg::TidX);
        let _unused = b.ld(Ty::F32, 0, x); // dead value, live memory op
        let p = b.setp(CmpOp::Lt, x, 16i32);
        b.cond_br(p, t, f);
        b.switch_to(t);
        b.st(1, x, Operand::ImmF(1.0));
        b.br(done);
        b.switch_to(f);
        b.st(1, x, Operand::ImmF(2.0));
        b.br(done);
        b.switch_to(done);
        let _unused2 = b.ld(Ty::F32, 0, 7i32);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Ld), 2, "unused loads survive");
        assert_eq!(h.get(InstrCategory::St), 2, "both arms' stores survive");
        assert_eq!(h.get(InstrCategory::Setp), 1, "branch predicate survives");
    }

    #[test]
    fn constant_predicate_flattens_branch() {
        let mut b = IrBuilder::new("k", 1);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let p = b.setp(CmpOp::Lt, 1i32, 2i32); // always true
        b.cond_br(p, t, f);
        b.switch_to(t);
        b.st(0, 0i32, Operand::ImmF(1.0));
        b.ret();
        b.switch_to(f);
        b.st(0, 0i32, Operand::ImmF(2.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert!(matches!(
            opt.blocks[0].terminator,
            Terminator::Br { target } if target == crate::kernel::BlockId(1)
        ));
        // The pipeline also removes the unreachable false arm and validates.
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        assert_eq!(opt.blocks.len(), 2, "false arm removed");
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::St), 1);
        assert_eq!(h.get(InstrCategory::Setp), 0, "folded predicate swept");
    }

    #[test]
    fn commutative_canonicalisation() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let y = b.sreg(SReg::TidY);
        let a = b.bin(BinOp::Add, Ty::S32, x, y);
        let c = b.bin(BinOp::Add, Ty::S32, y, x); // same value, swapped
        let s = b.bin(BinOp::Mul, Ty::S32, a, c);
        b.st(0, s, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Add), 1);
        // mul x*x simplification is not applied (not an identity), so 1 mul.
        assert_eq!(h.get(InstrCategory::Mul), 1);
    }

    #[test]
    fn setp_swapped_operands_cse() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let p1 = b.setp(CmpOp::Lt, x, 5i32);
        let p2 = b.setp(CmpOp::Gt, 5i32, x); // same predicate
        let s1 = b.selp(Ty::S32, 1i32, 0i32, p1);
        let s2 = b.selp(Ty::S32, 1i32, 0i32, p2);
        let s = b.bin(BinOp::Add, Ty::S32, s1, s2);
        b.st(0, s, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Setp), 1);
        assert_eq!(
            h.get(InstrCategory::Selp),
            1,
            "identical selects collapse too"
        );
    }

    #[test]
    fn mov_copy_propagation() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let m = b.mov(Ty::S32, x);
        let m2 = b.mov(Ty::S32, m);
        b.st(0, m2, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert_eq!(opt.blocks[0].instrs.len(), 2); // sreg + st
    }

    #[test]
    fn strength_reduction_mul_to_shift() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let m = b.bin(BinOp::Mul, Ty::S32, x, 8i32); // -> x << 3
        let m2 = b.bin(BinOp::Mul, Ty::S32, 4i32, x); // -> x << 2 (commuted)
        let s = b.bin(BinOp::Add, Ty::S32, m, m2);
        b.st(0, s, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let (opt, stats) = optimize_with_stats(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Mul), 0);
        assert_eq!(h.get(InstrCategory::Shift), 2);
        assert_eq!(stats.strength_rewrites, 2);
    }

    #[test]
    fn strength_reduction_div_needs_nonneg_proof() {
        // tid.x is non-negative (sreg) -> div/rem reduce to shift/mask.
        // A loaded parameter has unknown sign -> div must stay a div,
        // because >> rounds toward -inf while / rounds toward zero.
        let mut b = IrBuilder::new("k", 1);
        let pw = b.param("w", Ty::S32);
        let x = b.sreg(SReg::TidX);
        let w = b.ld_param(pw);
        let d1 = b.bin(BinOp::Div, Ty::S32, x, 4i32); // provable -> shr
        let r1 = b.bin(BinOp::Rem, Ty::S32, x, 32i32); // provable -> and
        let d2 = b.bin(BinOp::Div, Ty::S32, w, 4i32); // unknown sign -> keep
        let s1 = b.bin(BinOp::Add, Ty::S32, d1, r1);
        let s2 = b.bin(BinOp::Add, Ty::S32, s1, d2);
        b.st(0, s2, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Div), 1, "unproven div survives");
        assert_eq!(h.get(InstrCategory::Shift), 1, "x/4 -> x>>2");
        assert_eq!(h.get(InstrCategory::Logic), 1, "x%32 -> x&31");
    }

    #[test]
    fn strength_reduced_forms_agree_with_division() {
        // The proof obligation, checked exhaustively over a sign boundary:
        // for non-negative x, x/2^k == x>>k and x%2^k == x&(2^k-1) — and for
        // negative x they genuinely disagree, which is why the proof exists.
        for x in -64i32..=64 {
            for k in [1u32, 2, 3] {
                let p = 1i32 << k;
                if x >= 0 {
                    assert_eq!(x / p, x >> k);
                    assert_eq!(x % p, x & (p - 1));
                } else if x % p != 0 {
                    assert_ne!(x / p, x >> k, "negative non-multiples must disagree");
                    assert_ne!(x % p, x & (p - 1));
                } else {
                    assert_eq!(x / p, x >> k, "negative exact multiples agree");
                }
            }
        }
        // Concrete counterexample documenting the rounding mismatch.
        assert_ne!(-3i32 / 2, -3i32 >> 1, "div rounds to zero, shr to -inf");
    }

    #[test]
    fn gvn_reuses_values_across_blocks() {
        // The same clamp is computed in both arms of a diamond; GVN hoists
        // nothing but lets the second arm reuse... no — arms don't dominate
        // each other. The reuse happens when the entry computes it and both
        // arms recompute: entry dominates both arms, so both collapse.
        let mut b = IrBuilder::new("k", 2);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let done = b.create_block("done");
        let x = b.sreg(SReg::TidX);
        let c0 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let p = b.setp(CmpOp::Lt, x, 8i32);
        b.cond_br(p, t, f);
        b.switch_to(t);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32); // dup of c0
        b.st(1, c1, Operand::ImmF(1.0));
        b.br(done);
        b.switch_to(f);
        let c2 = b.bin(BinOp::Max, Ty::S32, x, 0i32); // dup of c0
        b.st(1, c2, Operand::ImmF(2.0));
        b.br(done);
        b.switch_to(done);
        b.st(1, c0, Operand::ImmF(3.0));
        b.ret();
        let k = b.finish();
        // Local CSE can't see across blocks; GVN collapses both duplicates.
        let local = optimize(&k, OptConfig::full());
        assert_eq!(InstrHistogram::of_kernel(&local).get(InstrCategory::Max), 3);
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        assert_eq!(InstrHistogram::of_kernel(&opt).get(InstrCategory::Max), 1);
    }

    #[test]
    fn gvn_does_not_merge_across_sibling_branches() {
        // Values computed in one arm must NOT be reused in the sibling arm
        // (neither dominates the other).
        let mut b = IrBuilder::new("k", 2);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let done = b.create_block("done");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 8i32);
        b.cond_br(p, t, f);
        b.switch_to(t);
        let a1 = b.bin(BinOp::Add, Ty::S32, x, 7i32);
        b.st(1, a1, Operand::ImmF(1.0));
        b.br(done);
        b.switch_to(f);
        let a2 = b.bin(BinOp::Add, Ty::S32, x, 7i32); // same value, sibling arm
        b.st(1, a2, Operand::ImmF(2.0));
        b.br(done);
        b.switch_to(done);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        assert_eq!(
            InstrHistogram::of_kernel(&opt).get(InstrCategory::Add),
            2,
            "sibling arms keep their own copies"
        );
    }

    #[test]
    fn cfg_simplify_threads_empty_blocks() {
        // diamond whose arms are empty forwarding blocks: after threading,
        // the branch targets the merge directly on both edges, collapses to
        // an unconditional branch, and the arms are removed.
        let mut b = IrBuilder::new("k", 1);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let done = b.create_block("done");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 8i32);
        b.cond_br(p, t, f);
        b.switch_to(t);
        b.br(done);
        b.switch_to(f);
        b.br(done);
        b.switch_to(done);
        b.st(0, x, Operand::ImmF(1.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        assert_eq!(opt.blocks.len(), 2, "empty arms threaded away");
        assert!(matches!(
            opt.blocks[0].terminator,
            Terminator::Br { .. } | Terminator::Ret
        ));
    }

    #[test]
    fn cfg_simplify_merges_branch_to_empty_ret() {
        let mut b = IrBuilder::new("k", 1);
        let exit = b.create_block("exit");
        let x = b.sreg(SReg::TidX);
        b.st(0, x, Operand::ImmF(1.0));
        b.br(exit);
        b.switch_to(exit);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        assert_eq!(opt.blocks.len(), 1, "empty exit merged into ret");
        assert!(matches!(opt.blocks[0].terminator, Terminator::Ret));
    }

    #[test]
    fn cfg_simplify_keeps_shared_empty_ret_block() {
        // Two arms funnel into one empty `ret` block. Rewriting either `br`
        // into a direct `ret` would leave the shared block alive while some
        // warps stop executing its `Ret` — the static per-region instruction
        // model would then overcount by one per warp (the regression behind
        // the per-region profiling exactness test). The merge must refuse.
        let mut b = IrBuilder::new("k", 1);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let exit = b.create_block("exit");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 8i32);
        b.cond_br(p, t, f);
        b.switch_to(t);
        b.st(0, x, Operand::ImmF(1.0));
        b.br(exit);
        b.switch_to(f);
        b.st(0, x, Operand::ImmF(2.0));
        b.br(exit);
        b.switch_to(exit);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::pipeline());
        crate::validate::assert_valid(&opt);
        assert_eq!(opt.blocks.len(), 4, "shared exit block must survive");
        let rets = opt
            .blocks
            .iter()
            .filter(|b| matches!(b.terminator, Terminator::Ret))
            .count();
        assert_eq!(rets, 1, "exactly the shared exit returns");
    }

    #[test]
    fn pipeline_is_idempotent_and_reaches_fixed_point() {
        // A kernel exercising every pass: folds, movs, strength-reducible
        // ops, cross-block duplicates, a constant branch, dead code.
        let mut b = IrBuilder::new("k", 2);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let done = b.create_block("done");
        let x = b.sreg(SReg::TidX);
        let xm = b.mov(Ty::S32, x);
        let base = b.bin(BinOp::Mul, Ty::S32, xm, 4i32);
        let _dead = b.bin(BinOp::Add, Ty::S32, base, 9i32);
        let p = b.setp(CmpOp::Lt, 3i32, 5i32); // constant: always true
        b.cond_br(p, t, f);
        b.switch_to(t);
        let b2 = b.bin(BinOp::Mul, Ty::S32, x, 4i32); // dup of base
        let v = b.ld(Ty::F32, 0, b2);
        b.st(1, b2, v);
        b.br(done);
        b.switch_to(f);
        b.st(1, 0i32, Operand::ImmF(9.0));
        b.br(done);
        b.switch_to(done);
        b.ret();
        let k = b.finish();
        let (once, stats) = optimize_with_stats(&k, OptConfig::pipeline());
        assert!(stats.reached_fixed_point, "{stats:?}");
        assert!(stats.iterations <= MAX_OPT_ITERATIONS);
        crate::validate::assert_valid(&once);
        let (twice, stats2) = optimize_with_stats(&once, OptConfig::pipeline());
        assert_eq!(once, twice, "pipeline output is a fixed point");
        assert_eq!(stats2.iterations, 1, "second run converges immediately");
        assert!(stats2.reached_fixed_point);
        assert_eq!(stats2.removed_total(), 0);
    }

    #[test]
    fn window_invariant_clamped_by_constructors() {
        let c = OptConfig::pipeline().with_windows(100, 10);
        assert_eq!(c.cse_window, 100);
        assert_eq!(c.cse_window_loads, 100, "loads window clamped up");
        let c = OptConfig::pipeline().with_windows(10, 100);
        assert_eq!(c.cse_window_loads, 100, "valid windows untouched");
        for c in [
            OptConfig::pipeline(),
            OptConfig::full(),
            OptConfig::none(),
            OptConfig::no_cse(),
            OptConfig::unbounded_cse(),
        ] {
            assert!(c.cse_window_loads >= c.cse_window, "{c:?}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "OptConfig invariant violated")]
    fn window_invariant_debug_asserted_in_optimize() {
        // A hand-rolled config violating the documented invariant trips the
        // debug assertion in optimize().
        let bad = OptConfig {
            cse_window: 50,
            cse_window_loads: 10,
            ..OptConfig::full()
        };
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        b.st(0, x, Operand::ImmF(0.0));
        b.ret();
        let _ = optimize(&b.finish(), bad);
    }

    #[test]
    fn optimization_is_idempotent() {
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let c2 = b.bin(BinOp::Min, Ty::S32, c1, 63i32);
        let v = b.ld(Ty::F32, 0, c2);
        let w = b.bin(BinOp::Mul, Ty::F32, v, 0.5f32);
        b.st(1, c2, w);
        b.ret();
        let k = b.finish();
        let once = optimize(&k, OptConfig::full());
        let twice = optimize(&once, OptConfig::full());
        assert_eq!(once, twice);
    }

    #[test]
    fn stats_account_for_removals() {
        let mut b = IrBuilder::new("k", 1);
        let a = b.bin(BinOp::Add, Ty::S32, 3i32, 4i32);
        let m = b.mov(Ty::S32, a);
        let dead = b.bin(BinOp::Mul, Ty::S32, m, 8i32);
        let _dead2 = b.bin(BinOp::Add, Ty::S32, dead, 1i32);
        b.st(0, m, Operand::ImmF(1.0));
        b.ret();
        let k = b.finish();
        let (opt, stats) = optimize_with_stats(&k, OptConfig::pipeline());
        assert_eq!(stats.before_instrs, k.static_len() as u64);
        assert_eq!(stats.after_instrs, opt.static_len() as u64);
        assert_eq!(
            stats.removed_total(),
            stats.before_instrs - stats.after_instrs
        );
        assert!(stats.fold_removed + stats.copy_prop_removed + stats.dce_removed >= 3);
        assert!(stats.reached_fixed_point);
    }
}
