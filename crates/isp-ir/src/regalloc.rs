//! Register-pressure estimation via liveness analysis.
//!
//! The paper's cost model (§IV-B) hinges on kernel register usage: the ISP
//! fat kernel's region-switching statements "could potentially increase
//! register usage on GPUs compared to a naive implementation", which lowers
//! theoretical occupancy. Real toolchains report this via `nvcc
//! --ptxas-options=-v`; here we estimate registers-per-thread as the maximum
//! number of simultaneously live virtual registers (a lower bound on what a
//! linear-scan allocator needs) plus a fixed reservation for system
//! registers, computed over the optimised IR.

use crate::cfg::Cfg;
use crate::kernel::Kernel;
use crate::types::Ty;
use std::collections::HashSet;

/// Registers reserved by the ABI/runtime on real hardware (kernel parameter
/// pointers, stack pointer, etc.). Added on top of the live-range estimate so
/// small kernels land in the realistic 10-30 range rather than 2-5.
pub const RESERVED_DATA_REGS: u32 = 8;

/// Cap on the ILP scheduling allowance (see [`ilp_allowance`]).
pub const ILP_ALLOWANCE_CAP: u32 = 12;

/// Estimated register usage of one kernel variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterUsage {
    /// General-purpose 32-bit registers per thread (the number occupancy
    /// calculations consume), including [`RESERVED_DATA_REGS`] and the
    /// ILP allowance.
    pub data_regs: u32,
    /// Predicate registers per thread.
    pub pred_regs: u32,
    /// Raw maximum of simultaneously live data virtual registers (without
    /// the reservation) — useful for diagnostics and tests.
    pub max_live_data: u32,
    /// ILP scheduling allowance added to `data_regs`.
    pub ilp_allowance: u32,
}

/// Extra registers `ptxas` spends to keep independent global loads in
/// flight. A strict liveness minimum is a severe underestimate for unrolled
/// stencil bodies: the scheduler batches loads for instruction-level
/// parallelism, which is exactly why a 13x13 bilateral compiles to 40+
/// registers while a 3x3 Gaussian stays near 20. Modelled as one register
/// per 8 loads in the most load-heavy basic block, capped.
pub fn ilp_allowance(kernel: &Kernel) -> u32 {
    let max_loads = kernel
        .blocks
        .iter()
        .map(|b| {
            b.instrs
                .iter()
                .filter(|i| matches!(i, crate::instr::Instr::Ld { .. }))
                .count() as u32
        })
        .max()
        .unwrap_or(0);
    (max_loads / 8).min(ILP_ALLOWANCE_CAP)
}

/// Cap on the control-flow allowance (see [`cfg_allowance`]).
pub const CFG_ALLOWANCE_CAP: u32 = 8;

/// Extra registers charged for control-flow complexity. `ptxas` allocates
/// conservatively around many-way branch joins and duplicates values across
/// specialised paths; a fat ISP kernel with its region-switch cascade and
/// nine bodies measurably exceeds the single-path naive kernel (the paper's
/// Table II observation, and the cost side of its model). One register per
/// four basic blocks beyond a simple kernel's four, capped.
pub fn cfg_allowance(kernel: &Kernel) -> u32 {
    let blocks = kernel.blocks.len() as u32;
    (blocks.saturating_sub(4) / 2).min(CFG_ALLOWANCE_CAP)
}

/// Estimate the register usage of `kernel`.
pub fn estimate(kernel: &Kernel) -> RegisterUsage {
    let cfg = Cfg::new(kernel);
    let n = kernel.blocks.len();

    // Per-block use/def sets ("use" = read before any write in the block).
    let mut uses: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    let mut defs: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for (i, b) in kernel.blocks.iter().enumerate() {
        for instr in &b.instrs {
            for s in instr.sources() {
                if !defs[i].contains(&s.index) {
                    uses[i].insert(s.index);
                }
            }
            if let Some(d) = instr.dst() {
                defs[i].insert(d.index);
            }
        }
        if let Some(p) = b.terminator.pred() {
            if !defs[i].contains(&p.index) {
                uses[i].insert(p.index);
            }
        }
    }

    // Backward dataflow to a fixpoint.
    let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out = HashSet::new();
            for s in &cfg.succs[i] {
                out.extend(live_in[s.0 as usize].iter().copied());
            }
            let mut inn: HashSet<u32> = out.difference(&defs[i]).copied().collect();
            inn.extend(uses[i].iter().copied());
            if inn != live_in[i] || out != live_out[i] {
                live_in[i] = inn;
                live_out[i] = out;
                changed = true;
            }
        }
    }

    // Sweep each block backwards tracking the live set to find the maximum
    // pressure at any program point, split by register class. Register types
    // are attached to every VReg occurrence; collect them in one scan.
    let mut ty_of: Vec<Option<Ty>> = vec![None; kernel.num_vregs as usize];
    for b in &kernel.blocks {
        for instr in &b.instrs {
            if let Some(d) = instr.dst() {
                ty_of[d.index as usize] = Some(d.ty);
            }
            for s in instr.sources() {
                ty_of[s.index as usize] = Some(s.ty);
            }
        }
        if let Some(p) = b.terminator.pred() {
            ty_of[p.index as usize] = Some(p.ty);
        }
    }
    let is_data = |idx: u32| ty_of[idx as usize].is_some_and(|t| t.is_data());

    let mut max_data = 0usize;
    let mut max_pred = 0usize;
    for (i, b) in kernel.blocks.iter().enumerate() {
        if !cfg.reachable[i] {
            continue;
        }
        let mut live = live_out[i].clone();
        let mut measure = |live: &HashSet<u32>| {
            let d = live.iter().filter(|&&r| is_data(r)).count();
            let p = live.len() - d;
            max_data = max_data.max(d);
            max_pred = max_pred.max(p);
        };
        if let Some(p) = b.terminator.pred() {
            live.insert(p.index);
        }
        measure(&live);
        for instr in b.instrs.iter().rev() {
            if let Some(d) = instr.dst() {
                live.remove(&d.index);
            }
            for s in instr.sources() {
                live.insert(s.index);
            }
            measure(&live);
        }
    }

    let ilp = ilp_allowance(kernel);
    let cfg_extra = cfg_allowance(kernel);
    RegisterUsage {
        data_regs: max_data as u32 + RESERVED_DATA_REGS + ilp + cfg_extra,
        pred_regs: max_pred as u32,
        max_live_data: max_data as u32,
        ilp_allowance: ilp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::instr::{BinOp, CmpOp, Operand, SReg};
    use crate::opt::{optimize, OptConfig};

    #[test]
    fn straightline_pressure() {
        // Chain: each value dies as the next is produced -> low pressure.
        let mut b = IrBuilder::new("chain", 1);
        let x = b.sreg(SReg::TidX);
        let a = b.bin(BinOp::Add, Ty::S32, x, 1i32);
        let c = b.bin(BinOp::Add, Ty::S32, a, 1i32);
        let d = b.bin(BinOp::Add, Ty::S32, c, 1i32);
        b.st(0, d, Operand::ImmF(0.0));
        b.ret();
        let u = estimate(&b.finish());
        assert_eq!(u.max_live_data, 1);
        assert_eq!(u.data_regs, 1 + RESERVED_DATA_REGS);
        assert_eq!(u.pred_regs, 0);
    }

    #[test]
    fn wide_pressure() {
        // Produce 6 values then consume them all: pressure 6.
        let mut b = IrBuilder::new("wide", 1);
        let vals: Vec<_> = (0..6)
            .map(|i| b.bin(BinOp::Add, Ty::S32, i, 1i32))
            .collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.bin(BinOp::Add, Ty::S32, acc, v);
        }
        b.st(0, acc, Operand::ImmF(0.0));
        b.ret();
        // Constant folding would collapse this; estimate raw.
        let u = estimate(&b.finish());
        assert_eq!(u.max_live_data, 6);
    }

    #[test]
    fn predicates_tracked_separately() {
        let mut b = IrBuilder::new("p", 1);
        let x = b.sreg(SReg::TidX);
        let p1 = b.setp(CmpOp::Lt, x, 1i32);
        let p2 = b.setp(CmpOp::Lt, x, 2i32);
        let p3 = b.setp(CmpOp::Lt, x, 3i32);
        let s1 = b.selp(Ty::S32, 1i32, 0i32, p1);
        let s2 = b.selp(Ty::S32, 2i32, 0i32, p2);
        let s3 = b.selp(Ty::S32, 3i32, 0i32, p3);
        let a = b.bin(BinOp::Add, Ty::S32, s1, s2);
        let t = b.bin(BinOp::Add, Ty::S32, a, s3);
        b.st(0, t, Operand::ImmF(0.0));
        b.ret();
        let u = estimate(&b.finish());
        assert_eq!(u.pred_regs, 3);
        assert!(u.max_live_data >= 3);
    }

    #[test]
    fn cross_block_liveness() {
        // x defined in entry, used in a later block: live across the branch.
        let mut b = IrBuilder::new("cross", 1);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let x = b.sreg(SReg::TidX);
        let y = b.sreg(SReg::TidY);
        let p = b.setp(CmpOp::Lt, x, 4i32);
        b.cond_br(p, t, f);
        b.switch_to(t);
        let s = b.bin(BinOp::Add, Ty::S32, x, y);
        b.st(0, s, Operand::ImmF(0.0));
        b.ret();
        b.switch_to(f);
        b.st(0, y, Operand::ImmF(1.0));
        b.ret();
        let u = estimate(&b.finish());
        // x and y both live at the branch point.
        assert!(u.max_live_data >= 2);
    }

    #[test]
    fn fat_kernel_uses_more_registers_than_thin() {
        // A "fat" kernel with a value kept alive across a region switch
        // must report at least the pressure of the thin kernel.
        let thin = {
            let mut b = IrBuilder::new("thin", 2);
            let x = b.sreg(SReg::TidX);
            let v = b.ld(Ty::F32, 0, x);
            let w = b.bin(BinOp::Mul, Ty::F32, v, 2.0f32);
            b.st(1, x, w);
            b.ret();
            b.finish()
        };
        let fat = {
            let mut b = IrBuilder::new("fat", 2);
            let r1 = b.create_block("r1");
            let r2 = b.create_block("r2");
            let x = b.sreg(SReg::TidX);
            let y = b.sreg(SReg::TidY);
            let bx = b.sreg(SReg::CtaIdX);
            let by = b.sreg(SReg::CtaIdY);
            // Switching logic keeps bx/by/x/y live simultaneously.
            let p1 = b.setp(CmpOp::Lt, bx, 1i32);
            b.cond_br(p1, r1, r2);
            b.switch_to(r1);
            let a = b.bin(BinOp::Add, Ty::S32, x, y);
            let a2 = b.bin(BinOp::Add, Ty::S32, a, by);
            let v = b.ld(Ty::F32, 0, a2);
            b.st(1, a2, v);
            b.ret();
            b.switch_to(r2);
            let s = b.bin(BinOp::Add, Ty::S32, x, by);
            let v = b.ld(Ty::F32, 0, s);
            b.st(1, s, v);
            b.ret();
            b.finish()
        };
        let ut = estimate(&thin);
        let uf = estimate(&fat);
        assert!(
            uf.data_regs > ut.data_regs,
            "fat {:?} must exceed thin {:?}",
            uf,
            ut
        );
    }

    #[test]
    fn optimisation_does_not_increase_pressure_in_simple_kernels() {
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let c2 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let v1 = b.ld(Ty::F32, 0, c1);
        let v2 = b.ld(Ty::F32, 0, c2);
        let s = b.bin(BinOp::Add, Ty::F32, v1, v2);
        b.st(1, c1, s);
        b.ret();
        let k = b.finish();
        let raw = estimate(&k);
        let opt = estimate(&optimize(&k, OptConfig::full()));
        assert!(opt.max_live_data <= raw.max_live_data);
    }
}
