//! PTX-like textual form of kernels, for inspection, examples, and docs.

use crate::instr::{Instr, Terminator};
use crate::kernel::Kernel;
use std::fmt::Write;

/// Render one instruction in PTX-ish syntax.
pub fn format_instr(i: &Instr) -> String {
    match i {
        Instr::Bin { op, dst, a, b } => {
            format!("{}.{} \t{dst}, {a}, {b};", op.mnemonic(), dst.ty)
        }
        Instr::Mad { dst, a, b, c } => {
            let m = if dst.ty == crate::types::Ty::F32 {
                "fma.rn"
            } else {
                "mad.lo"
            };
            format!("{m}.{} \t{dst}, {a}, {b}, {c};", dst.ty)
        }
        Instr::Un { op, dst, a } => format!("{}.{} \t{dst}, {a};", op.mnemonic(), dst.ty),
        Instr::Cvt { dst, a } => format!("cvt.rn.{}.{} \t{dst}, {a};", dst.ty, a.ty()),
        Instr::SetP { cmp, dst, a, b } => {
            format!("setp.{}.{} \t{dst}, {a}, {b};", cmp.mnemonic(), a.ty())
        }
        Instr::SelP { dst, a, b, pred } => {
            format!("selp.{} \t{dst}, {a}, {b}, {pred};", dst.ty)
        }
        Instr::Sreg { dst, sreg } => format!("mov.s32 \t{dst}, {};", sreg.name()),
        Instr::LdParam { dst, index } => {
            format!("ld.param.{} \t{dst}, [param_{index}];", dst.ty)
        }
        Instr::Ld { dst, buf, addr } => {
            format!("ld.global.{} \t{dst}, [buf{buf} + {addr}];", dst.ty)
        }
        Instr::Tex { dst, buf, x, y } => {
            format!(
                "tex.2d.v1.{}.s32 \t{dst}, [tex{buf}, {{{x}, {y}}}];",
                dst.ty
            )
        }
        Instr::St { buf, addr, val } => {
            format!("st.global.{} \t[buf{buf} + {addr}], {val};", val.ty())
        }
        Instr::Lds { dst, addr } => format!("ld.shared.{} \t{dst}, [smem + {addr}];", dst.ty),
        Instr::Sts { addr, val } => format!("st.shared.{} \t[smem + {addr}], {val};", val.ty()),
        Instr::Bar => "bar.sync \t0;".to_string(),
    }
}

/// Render a terminator.
pub fn format_terminator(t: &Terminator, kernel: &Kernel) -> String {
    match t {
        Terminator::Br { target } => format!("bra \t${};", kernel.block(*target).label),
        Terminator::CondBr {
            pred,
            if_true,
            if_false,
        } => format!(
            "@{pred} bra \t${};  bra \t${};",
            kernel.block(*if_true).label,
            kernel.block(*if_false).label
        ),
        Terminator::Ret => "ret;".to_string(),
    }
}

/// Render a whole kernel as PTX-like text.
pub fn print_kernel(kernel: &Kernel) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// {} vregs, {} blocks",
        kernel.num_vregs,
        kernel.blocks.len()
    );
    let _ = write!(s, ".visible .entry {}(", kernel.name);
    for i in 0..kernel.num_buffers {
        let _ = write!(s, ".param .u64 buf{i}, ");
    }
    for (i, p) in kernel.params.iter().enumerate() {
        if i > 0 {
            let _ = write!(s, ", ");
        }
        let _ = write!(s, ".param .{} {}", p.ty, p.name);
    }
    let _ = writeln!(s, ")");
    let _ = writeln!(s, "{{");
    for b in &kernel.blocks {
        let _ = writeln!(s, "${}:", b.label);
        for i in &b.instrs {
            let _ = writeln!(s, "\t{}", format_instr(i));
        }
        let _ = writeln!(s, "\t{}", format_terminator(&b.terminator, kernel));
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::instr::{BinOp, CmpOp, SReg};
    use crate::types::Ty;

    #[test]
    fn prints_recognisable_ptx() {
        let mut b = IrBuilder::new("gaussian_naive", 2);
        let pw = b.param("width", Ty::S32);
        let t = b.create_block("body");
        let e = b.create_block("exit");
        let x = b.sreg(SReg::TidX);
        let w = b.ld_param(pw);
        let p = b.setp(CmpOp::Lt, x, w);
        b.cond_br(p, t, e);
        b.switch_to(t);
        let v = b.ld(Ty::F32, 0, x);
        let d = b.bin(BinOp::Mul, Ty::F32, v, 0.5f32);
        b.st(1, x, d);
        b.br(e);
        b.switch_to(e);
        b.ret();
        let k = b.finish();
        let text = print_kernel(&k);
        assert!(text.contains(".visible .entry gaussian_naive("));
        assert!(text.contains("mov.s32 \t%r0, %tid.x;"));
        assert!(text.contains("ld.param.s32"));
        assert!(text.contains("setp.lt.s32"));
        assert!(text.contains("ld.global.f32"));
        assert!(text.contains("st.global.f32"));
        assert!(text.contains("$body:"));
        assert!(text.contains("bra \t$exit;"));
        assert!(text.contains("ret;"));
    }

    #[test]
    fn float_immediates_print_bit_patterns() {
        let mut b = IrBuilder::new("k", 1);
        let v = b.mov(Ty::F32, 1.0f32);
        b.st(0, 0i32, v);
        b.ret();
        let text = print_kernel(&b.finish());
        assert!(text.contains("0f3F800000"), "{text}");
    }

    #[test]
    fn mad_prints_fma_for_floats() {
        let mut b = IrBuilder::new("k", 1);
        let f = b.mov(Ty::F32, 2.0f32);
        let m = b.mad(Ty::F32, f, f, f);
        let i = b.mov(Ty::S32, 3i32);
        let n = b.mad(Ty::S32, i, i, i);
        b.st(0, n, m);
        b.ret();
        let text = print_kernel(&b.finish());
        assert!(text.contains("fma.rn.f32"));
        assert!(text.contains("mad.lo.s32"));
    }
}
