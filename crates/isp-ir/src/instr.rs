//! Instruction set of the PTX-like IR.

use crate::types::{Ty, VReg};

/// Special (read-only) hardware registers, mirroring PTX `%tid`, `%ctaid`,
/// `%ntid`, `%nctaid`, plus derived lane/warp identifiers the warp-grained
/// partitioning needs (paper Listing 5 computes `warpID.x` from `threadIdx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SReg {
    /// `threadIdx.x`
    TidX,
    /// `threadIdx.y`
    TidY,
    /// `blockIdx.x`
    CtaIdX,
    /// `blockIdx.y`
    CtaIdY,
    /// `blockDim.x`
    NTidX,
    /// `blockDim.y`
    NTidY,
    /// `gridDim.x`
    NCtaIdX,
    /// `gridDim.y`
    NCtaIdY,
    /// Lane index within the warp: `threadIdx linearised % 32`.
    LaneId,
    /// Warp index in the x-dimension: `threadIdx.x / 32`.
    WarpIdX,
}

impl SReg {
    /// PTX-ish spelling for the printer.
    pub fn name(&self) -> &'static str {
        match self {
            SReg::TidX => "%tid.x",
            SReg::TidY => "%tid.y",
            SReg::CtaIdX => "%ctaid.x",
            SReg::CtaIdY => "%ctaid.y",
            SReg::NTidX => "%ntid.x",
            SReg::NTidY => "%ntid.y",
            SReg::NCtaIdX => "%nctaid.x",
            SReg::NCtaIdY => "%nctaid.y",
            SReg::LaneId => "%laneid",
            SReg::WarpIdX => "%warpid.x",
        }
    }
}

/// Instruction operand: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// Signed 32-bit integer immediate.
    ImmI(i32),
    /// 32-bit float immediate.
    ImmF(f32),
}

impl Operand {
    /// The operand's type (immediates are self-describing).
    pub fn ty(&self) -> Ty {
        match self {
            Operand::Reg(r) => r.ty,
            Operand::ImmI(_) => Ty::S32,
            Operand::ImmF(_) => Ty::F32,
        }
    }

    /// The register, if this operand is one.
    pub fn as_reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::ImmI(v)
    }
}

impl From<f32> for Operand {
    fn from(v: f32) -> Self {
        Operand::ImmF(v)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmI(v) => write!(f, "{v}"),
            Operand::ImmF(v) => write!(f, "0f{:08X} /*{v}*/", v.to_bits()),
        }
    }
}

/// Two-operand arithmetic/logic operations. The result type is the
/// destination register's type; both sources must match it (except shifts,
/// whose shift amount is always `s32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    /// PTX mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Whether the operation is commutative (used by value numbering to
    /// canonicalise operand order).
    pub fn commutative(&self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

/// One-operand operations. `Mov` doubles as the register-to-register copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Mov,
    Neg,
    Abs,
    Not,
    /// Natural exponential (maps to SFU `ex2` + scale on real hardware).
    Exp,
    /// Natural logarithm.
    Log,
    Sqrt,
    Rsqrt,
    Floor,
}

impl UnOp {
    /// PTX-ish mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            UnOp::Mov => "mov",
            UnOp::Neg => "neg",
            UnOp::Abs => "abs",
            UnOp::Not => "not",
            UnOp::Exp => "ex2.approx",
            UnOp::Log => "lg2.approx",
            UnOp::Sqrt => "sqrt.approx",
            UnOp::Rsqrt => "rsqrt.approx",
            UnOp::Floor => "cvt.rmi",
        }
    }

    /// True for the transcendental ops issued to the special function unit.
    pub fn is_sfu(&self) -> bool {
        matches!(self, UnOp::Exp | UnOp::Log | UnOp::Sqrt | UnOp::Rsqrt)
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// PTX comparison suffix.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The comparison with swapped operands (`a op b == b op.swapped a`).
    pub fn swapped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = a <op> b`
    Bin {
        op: BinOp,
        dst: VReg,
        a: Operand,
        b: Operand,
    },
    /// Fused multiply-add: `dst = a * b + c` (PTX `mad`/`fma`).
    Mad {
        dst: VReg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `dst = <op> a`
    Un { op: UnOp, dst: VReg, a: Operand },
    /// Type conversion between `s32` and `f32` (round-to-nearest on
    /// float-to-int, matching the reference `Pixel::from_f32`).
    Cvt { dst: VReg, a: Operand },
    /// `dst = a <cmp> b` producing a predicate.
    SetP {
        cmp: CmpOp,
        dst: VReg,
        a: Operand,
        b: Operand,
    },
    /// `dst = pred ? a : b`.
    SelP {
        dst: VReg,
        a: Operand,
        b: Operand,
        pred: VReg,
    },
    /// Read a special register into `dst` (`s32`).
    Sreg { dst: VReg, sreg: SReg },
    /// Load the scalar kernel parameter with the given index into `dst`.
    LdParam { dst: VReg, index: u32 },
    /// Global load: `dst = buffer[addr]` (element index addressing).
    Ld { dst: VReg, buf: u32, addr: Operand },
    /// 2D texture fetch: `dst = tex2d(buffer, x, y)` with out-of-range
    /// coordinates resolved by the texture unit's address mode (hardware
    /// border handling — the alternative the paper discusses in its
    /// introduction). The buffer must carry a texture descriptor.
    Tex {
        dst: VReg,
        buf: u32,
        x: Operand,
        y: Operand,
    },
    /// Global store: `buffer[addr] = val`.
    St {
        buf: u32,
        addr: Operand,
        val: Operand,
    },
    /// Shared-memory load: `dst = shared[addr]` (per-block scratchpad,
    /// element index addressing; the kernel declares its size).
    Lds { dst: VReg, addr: Operand },
    /// Shared-memory store: `shared[addr] = val`.
    Sts { addr: Operand, val: Operand },
    /// Block-wide barrier (`__syncthreads()` / PTX `bar.sync`). Every thread
    /// of the block must reach it (the interpreter enforces this).
    Bar,
}

impl Instr {
    /// The destination register, if the instruction defines one.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            Instr::Bin { dst, .. }
            | Instr::Mad { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Cvt { dst, .. }
            | Instr::SetP { dst, .. }
            | Instr::SelP { dst, .. }
            | Instr::Sreg { dst, .. }
            | Instr::LdParam { dst, .. }
            | Instr::Ld { dst, .. }
            | Instr::Tex { dst, .. }
            | Instr::Lds { dst, .. } => Some(*dst),
            Instr::St { .. } | Instr::Sts { .. } | Instr::Bar => None,
        }
    }

    /// All register operands read by the instruction.
    pub fn sources(&self) -> Vec<VReg> {
        let mut out = Vec::with_capacity(3);
        let mut push = |op: &Operand| {
            if let Operand::Reg(r) = op {
                out.push(*r);
            }
        };
        match self {
            Instr::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::Mad { a, b, c, .. } => {
                push(a);
                push(b);
                push(c);
            }
            Instr::Un { a, .. } | Instr::Cvt { a, .. } => push(a),
            Instr::SetP { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::SelP { a, b, pred, .. } => {
                push(a);
                push(b);
                out.push(*pred);
            }
            Instr::Sreg { .. } | Instr::LdParam { .. } => {}
            Instr::Ld { addr, .. } => push(addr),
            Instr::Tex { x, y, .. } => {
                push(x);
                push(y);
            }
            Instr::St { addr, val, .. } => {
                push(addr);
                push(val);
            }
            Instr::Lds { addr, .. } => push(addr),
            Instr::Sts { addr, val } => {
                push(addr);
                push(val);
            }
            Instr::Bar => {}
        }
        out
    }

    /// Whether the instruction has no side effects and can be removed when
    /// its destination is dead, or deduplicated by value numbering.
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            Instr::St { .. }
                | Instr::Ld { .. }
                | Instr::Tex { .. }
                | Instr::Lds { .. }
                | Instr::Sts { .. }
                | Instr::Bar
        )
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br { target: crate::kernel::BlockId },
    /// Conditional branch on a predicate register.
    CondBr {
        pred: VReg,
        if_true: crate::kernel::BlockId,
        if_false: crate::kernel::BlockId,
    },
    /// Thread exit.
    Ret,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<crate::kernel::BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Ret => vec![],
        }
    }

    /// Predicate register read, if any.
    pub fn pred(&self) -> Option<VReg> {
        match self {
            Terminator::CondBr { pred, .. } => Some(*pred),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BlockId;

    fn r(i: u32) -> VReg {
        VReg::new(i, Ty::S32)
    }

    #[test]
    fn operand_conversions() {
        let op: Operand = r(1).into();
        assert_eq!(op.as_reg(), Some(r(1)));
        assert_eq!(op.ty(), Ty::S32);
        let op: Operand = 5i32.into();
        assert_eq!(op.ty(), Ty::S32);
        assert_eq!(op.as_reg(), None);
        let op: Operand = 2.5f32.into();
        assert_eq!(op.ty(), Ty::F32);
    }

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.commutative());
        assert!(BinOp::Mul.commutative());
        assert!(!BinOp::Sub.commutative());
        assert!(!BinOp::Shl.commutative());
        assert!(BinOp::Max.commutative());
    }

    #[test]
    fn sfu_classification() {
        assert!(UnOp::Exp.is_sfu());
        assert!(UnOp::Sqrt.is_sfu());
        assert!(!UnOp::Mov.is_sfu());
        assert!(!UnOp::Abs.is_sfu());
    }

    #[test]
    fn cmp_swapping() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.swapped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }

    #[test]
    fn dst_and_sources() {
        let i = Instr::Bin {
            op: BinOp::Add,
            dst: r(2),
            a: r(0).into(),
            b: r(1).into(),
        };
        assert_eq!(i.dst(), Some(r(2)));
        assert_eq!(i.sources(), vec![r(0), r(1)]);

        let st = Instr::St {
            buf: 0,
            addr: r(3).into(),
            val: Operand::ImmF(1.0),
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.sources(), vec![r(3)]);
        assert!(!st.is_pure());

        let p = VReg::new(9, Ty::Pred);
        let sel = Instr::SelP {
            dst: r(4),
            a: 1i32.into(),
            b: 2i32.into(),
            pred: p,
        };
        assert_eq!(sel.sources(), vec![p]);
        assert!(sel.is_pure());
    }

    #[test]
    fn terminator_successors() {
        let br = Terminator::Br { target: BlockId(3) };
        assert_eq!(br.successors(), vec![BlockId(3)]);
        assert_eq!(br.pred(), None);
        let p = VReg::new(0, Ty::Pred);
        let cb = Terminator::CondBr {
            pred: p,
            if_true: BlockId(1),
            if_false: BlockId(2),
        };
        assert_eq!(cb.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(cb.pred(), Some(p));
        assert!(Terminator::Ret.successors().is_empty());
    }
}
