#![allow(clippy::needless_range_loop)] // bitset loops index parallel arrays

//! Control-flow-graph analyses: successors/predecessors, reachability, and
//! immediate post-dominators.
//!
//! The post-dominator analysis serves the simulator's SIMT divergence model:
//! when a warp diverges at a conditional branch in block `B`, the two paths
//! are serialised and the warp reconverges at `ipostdom(B)` — exactly the
//! reconvergence-stack behaviour of real NVIDIA hardware that the paper's
//! region-switching code relies on.

use crate::kernel::{BlockId, Kernel};

/// Successor/predecessor maps plus reachability for one kernel.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor block ids per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor block ids per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Whether each block is reachable from the entry.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Build the CFG of `kernel`.
    pub fn new(kernel: &Kernel) -> Self {
        let n = kernel.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in kernel.blocks.iter().enumerate() {
            for s in b.terminator.successors() {
                succs[i].push(s);
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        let mut reachable = vec![false; n];
        let mut stack = vec![kernel.entry()];
        while let Some(b) = stack.pop() {
            if reachable[b.0 as usize] {
                continue;
            }
            reachable[b.0 as usize] = true;
            for &s in &succs[b.0 as usize] {
                stack.push(s);
            }
        }
        Cfg {
            succs,
            preds,
            reachable,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the kernel has no blocks (never the case for built kernels).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks with no successors (thread exits).
    pub fn exits(&self) -> Vec<BlockId> {
        (0..self.len())
            .filter(|&i| self.succs[i].is_empty() && self.reachable[i])
            .map(|i| BlockId(i as u32))
            .collect()
    }

    /// Reverse post-order over the blocks reachable from the entry.
    ///
    /// Every dominator appears before the blocks it dominates, which is what
    /// lets the optimiser's global value numbering pass fill per-block value
    /// tables in a single traversal and look them up through the immediate
    /// dominator chain. Unreachable blocks are omitted.
    pub fn rpo(&self) -> Vec<BlockId> {
        let n = self.len();
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        if n == 0 {
            return post;
        }
        let mut visited = vec![false; n];
        // Iterative DFS: (block, index of next successor to visit).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.succs[b].len() {
                let s = self.succs[b][*next].0 as usize;
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(BlockId(b as u32));
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominator of every block: `None` for the entry (which has
    /// no strict dominator) and for unreachable blocks.
    ///
    /// The forward-CFG mirror of [`Cfg::ipostdom`]: iterative bitset
    /// intersection over predecessors, then the closest strict dominator is
    /// the one with the largest dominator set (the strict-dominator chain is
    /// totally ordered by inclusion).
    pub fn idom(&self) -> Vec<Option<BlockId>> {
        let n = self.len();
        let words = n.div_ceil(64);
        let set = |bits: &mut [u64], i: usize| bits[i / 64] |= 1 << (i % 64);
        let mut dom: Vec<Vec<u64>> = vec![vec![u64::MAX; words]; n];
        if n > 0 {
            dom[0] = vec![0u64; words];
            set(&mut dom[0], 0);
        }
        let order = self.rpo();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let i = b.0 as usize;
                if i == 0 {
                    continue;
                }
                let mut new = vec![u64::MAX; words];
                for p in &self.preds[i] {
                    if !self.reachable[p.0 as usize] {
                        continue;
                    }
                    for (w, pw) in new.iter_mut().zip(&dom[p.0 as usize]) {
                        *w &= pw;
                    }
                }
                set(&mut new, i);
                if new != dom[i] {
                    dom[i] = new;
                    changed = true;
                }
            }
        }
        let popcount = |bits: &[u64]| -> u32 { bits.iter().map(|w| w.count_ones()).sum() };
        (0..n)
            .map(|i| {
                if !self.reachable[i] || i == 0 {
                    return None;
                }
                let mut best: Option<(BlockId, u32)> = None;
                for j in 0..n {
                    if j == i || !self.reachable[j] {
                        continue;
                    }
                    if dom[i][j / 64] & (1 << (j % 64)) != 0 {
                        let size = popcount(&dom[j]);
                        if best.is_none_or(|(_, s)| size > s) {
                            best = Some((BlockId(j as u32), size));
                        }
                    }
                }
                best.map(|(b, _)| b)
            })
            .collect()
    }

    /// Immediate post-dominator of every reachable block, or `None` when the
    /// only strict post-dominator is the (virtual) exit.
    ///
    /// Computed with a straightforward iterative set intersection over the
    /// reverse CFG; kernels here have at most a few hundred blocks, so the
    /// simple algorithm is plenty fast and easy to trust.
    pub fn ipostdom(&self) -> Vec<Option<BlockId>> {
        let n = self.len();
        let words = n.div_ceil(64);
        // pdom[b] as a bitset; initially "all blocks" except for exits.
        let full = vec![u64::MAX; words];
        let mut pdom: Vec<Vec<u64>> = vec![full; n];
        let set = |bits: &mut [u64], i: usize| bits[i / 64] |= 1 << (i % 64);
        let only_self = |i: usize| {
            let mut bits = vec![0u64; words];
            set(&mut bits, i);
            bits
        };
        for i in 0..n {
            if self.succs[i].is_empty() {
                pdom[i] = only_self(i);
            }
        }
        // Iterate to fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                if !self.reachable[i] || self.succs[i].is_empty() {
                    continue;
                }
                // Intersection of successors' pdom sets, plus self.
                let mut new = vec![u64::MAX; words];
                for s in &self.succs[i] {
                    for (w, sw) in new.iter_mut().zip(&pdom[s.0 as usize]) {
                        *w &= sw;
                    }
                }
                set(&mut new, i);
                if new != pdom[i] {
                    pdom[i] = new;
                    changed = true;
                }
            }
        }
        // ipdom = the strict post-dominator with the largest pdom set
        // (the chain of strict post-dominators is totally ordered by
        // inclusion; the closest one has the most elements).
        let popcount = |bits: &[u64]| -> u32 { bits.iter().map(|w| w.count_ones()).sum() };
        (0..n)
            .map(|i| {
                if !self.reachable[i] {
                    return None;
                }
                let mut best: Option<(BlockId, u32)> = None;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let is_pdom = pdom[i][j / 64] & (1 << (j % 64)) != 0;
                    if is_pdom {
                        let size = popcount(&pdom[j]);
                        if best.is_none_or(|(_, s)| size > s) {
                            best = Some((BlockId(j as u32), size));
                        }
                    }
                }
                best.map(|(b, _)| b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::instr::{CmpOp, SReg};

    fn diamond() -> Kernel {
        let mut b = IrBuilder::new("diamond", 0);
        let t = b.create_block("then");
        let e = b.create_block("else");
        let m = b.create_block("merge");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 4i32);
        b.cond_br(p, t, e);
        b.switch_to(t);
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        b.ret();
        b.finish()
    }

    #[test]
    fn diamond_edges() {
        let k = diamond();
        let cfg = Cfg::new(&k);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(cfg.reachable.iter().all(|&r| r));
        assert_eq!(cfg.exits(), vec![BlockId(3)]);
    }

    #[test]
    fn diamond_reconverges_at_merge() {
        let k = diamond();
        let ipd = Cfg::new(&k).ipostdom();
        assert_eq!(ipd[0], Some(BlockId(3)), "branch reconverges at merge");
        assert_eq!(ipd[1], Some(BlockId(3)));
        assert_eq!(ipd[2], Some(BlockId(3)));
        assert_eq!(ipd[3], None, "exit has no post-dominator");
    }

    #[test]
    fn nested_diamonds() {
        // entry -> (inner diamond) -> merge_outer
        let mut b = IrBuilder::new("nested", 0);
        let inner = b.create_block("inner_branch");
        let t2 = b.create_block("t2");
        let e2 = b.create_block("e2");
        let m2 = b.create_block("m2");
        let outer_else = b.create_block("outer_else");
        let m1 = b.create_block("m1");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 8i32);
        b.cond_br(p, inner, outer_else);
        b.switch_to(inner);
        let y = b.sreg(SReg::TidY);
        let q = b.setp(CmpOp::Lt, y, 2i32);
        b.cond_br(q, t2, e2);
        b.switch_to(t2);
        b.br(m2);
        b.switch_to(e2);
        b.br(m2);
        b.switch_to(m2);
        b.br(m1);
        b.switch_to(outer_else);
        b.br(m1);
        b.switch_to(m1);
        b.ret();
        let k = b.finish();
        let cfg = Cfg::new(&k);
        let ipd = cfg.ipostdom();
        let inner_id = k.block_by_label("inner_branch").unwrap();
        let m2_id = k.block_by_label("m2").unwrap();
        let m1_id = k.block_by_label("m1").unwrap();
        assert_eq!(
            ipd[inner_id.0 as usize],
            Some(m2_id),
            "inner reconverges at m2"
        );
        assert_eq!(ipd[0], Some(m1_id), "outer reconverges at m1");
        assert_eq!(ipd[m2_id.0 as usize], Some(m1_id));
    }

    #[test]
    fn loop_ipdom_is_exit_block() {
        // entry -> loop; loop -> loop | done (a `Repeat` while-loop shape)
        let mut b = IrBuilder::new("loop", 0);
        let l = b.create_block("loop");
        let d = b.create_block("done");
        b.br(l);
        b.switch_to(l);
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 10i32);
        b.cond_br(p, l, d);
        b.switch_to(d);
        b.ret();
        let k = b.finish();
        let ipd = Cfg::new(&k).ipostdom();
        assert_eq!(ipd[0], Some(BlockId(1)));
        assert_eq!(ipd[1], Some(BlockId(2)), "loop header reconverges at done");
    }

    #[test]
    fn multiple_exits_have_no_common_ipdom() {
        // entry -> ret_a | ret_b: branch's ipdom must be None (virtual exit).
        let mut b = IrBuilder::new("two_exits", 0);
        let a = b.create_block("a");
        let c = b.create_block("c");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 1i32);
        b.cond_br(p, a, c);
        b.switch_to(a);
        b.ret();
        b.switch_to(c);
        b.ret();
        let k = b.finish();
        let ipd = Cfg::new(&k).ipostdom();
        assert_eq!(ipd[0], None);
        assert_eq!(Cfg::new(&k).exits().len(), 2);
    }

    #[test]
    fn diamond_rpo_and_idom() {
        let k = diamond();
        let cfg = Cfg::new(&k);
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], BlockId(0), "entry first");
        // Merge must come after both arms.
        let pos = |id: BlockId| rpo.iter().position(|&b| b == id).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
        let idom = cfg.idom();
        assert_eq!(idom[0], None, "entry has no strict dominator");
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        assert_eq!(idom[3], Some(BlockId(0)), "merge dominated by branch only");
    }

    #[test]
    fn loop_idom_chain() {
        let mut b = IrBuilder::new("loop", 0);
        let l = b.create_block("loop");
        let d = b.create_block("done");
        b.br(l);
        b.switch_to(l);
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 10i32);
        b.cond_br(p, l, d);
        b.switch_to(d);
        b.ret();
        let k = b.finish();
        let idom = Cfg::new(&k).idom();
        assert_eq!(idom[1], Some(BlockId(0)), "header dominated by entry");
        assert_eq!(idom[2], Some(BlockId(1)), "exit dominated by header");
    }

    #[test]
    fn unreachable_block_excluded_from_rpo_and_idom() {
        let mut b = IrBuilder::new("dead", 0);
        let dead = b.create_block("dead");
        b.ret();
        b.switch_to(dead);
        b.ret();
        let k = b.finish();
        let cfg = Cfg::new(&k);
        assert_eq!(cfg.rpo(), vec![BlockId(0)]);
        assert_eq!(cfg.idom(), vec![None, None]);
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut b = IrBuilder::new("dead", 0);
        let dead = b.create_block("dead");
        b.ret();
        b.switch_to(dead);
        b.ret();
        let k = b.finish();
        let cfg = Cfg::new(&k);
        assert!(cfg.reachable[0]);
        assert!(!cfg.reachable[1]);
        assert_eq!(cfg.ipostdom()[1], None);
    }
}
