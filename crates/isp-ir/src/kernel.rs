//! Kernels and basic blocks.

use crate::instr::{Instr, Terminator};
use crate::types::Ty;

/// Index of a basic block within its kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BB{}", self.0)
    }
}

/// A scalar kernel parameter declaration (image geometry, index bounds,
/// border constants, filter parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name, e.g. `"width"` or `"bh_l"`.
    pub name: String,
    /// Parameter type (`S32` or `F32`).
    pub ty: Ty,
}

/// A basic block: a label, straight-line instructions, and a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Human-readable label, e.g. `"entry"`, `"region_TL"`.
    pub label: String,
    /// Straight-line instruction body.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub terminator: Terminator,
}

/// A compiled kernel: a small CFG over typed virtual registers, plus its
/// buffer and scalar parameter signatures.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name, used in printouts and bench tables.
    pub name: String,
    /// Number of buffer parameters (buffer 0, 1, … in `Ld`/`St`).
    pub num_buffers: u32,
    /// Scalar parameters, addressed by index in `LdParam`.
    pub params: Vec<ParamDecl>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Total virtual registers allocated (indices `0..num_vregs`).
    pub num_vregs: u32,
    /// Shared-memory scratchpad size per block, in 32-bit elements (0 when
    /// the kernel uses no shared memory).
    pub shared_elems: u32,
}

impl Kernel {
    /// The entry block id (always `BB0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Borrow a block by id. Panics on out-of-range ids (kernels are
    /// validated at construction).
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Find a block id by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.label == label)
            .map(|i| BlockId(i as u32))
    }

    /// Find a scalar parameter index by name.
    pub fn param_index(&self, name: &str) -> Option<u32> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u32)
    }

    /// Total static instruction count including terminators (PTX `bra`/`ret`
    /// are instructions too and the paper's Table I counts them).
    pub fn static_len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }

    /// Iterate over all instructions of all blocks.
    pub fn iter_instrs(&self) -> impl Iterator<Item = &Instr> {
        self.blocks.iter().flat_map(|b| b.instrs.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, Operand};
    use crate::types::VReg;

    pub(crate) fn tiny_kernel() -> Kernel {
        // BB0: r0 = 1 + 2; br BB1
        // BB1: ret
        Kernel {
            name: "tiny".into(),
            shared_elems: 0,
            num_buffers: 1,
            params: vec![
                ParamDecl {
                    name: "width".into(),
                    ty: Ty::S32,
                },
                ParamDecl {
                    name: "scale".into(),
                    ty: Ty::F32,
                },
            ],
            blocks: vec![
                BasicBlock {
                    label: "entry".into(),
                    instrs: vec![Instr::Bin {
                        op: BinOp::Add,
                        dst: VReg::new(0, Ty::S32),
                        a: Operand::ImmI(1),
                        b: Operand::ImmI(2),
                    }],
                    terminator: Terminator::Br { target: BlockId(1) },
                },
                BasicBlock {
                    label: "exit".into(),
                    instrs: vec![],
                    terminator: Terminator::Ret,
                },
            ],
            num_vregs: 1,
        }
    }

    #[test]
    fn lookup_helpers() {
        let k = tiny_kernel();
        assert_eq!(k.entry(), BlockId(0));
        assert_eq!(k.block_by_label("exit"), Some(BlockId(1)));
        assert_eq!(k.block_by_label("nope"), None);
        assert_eq!(k.param_index("scale"), Some(1));
        assert_eq!(k.param_index("height"), None);
        assert_eq!(k.block(BlockId(0)).label, "entry");
    }

    #[test]
    fn static_len_counts_terminators() {
        let k = tiny_kernel();
        // 1 instruction + 2 terminators.
        assert_eq!(k.static_len(), 3);
        assert_eq!(k.iter_instrs().count(), 1);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(4).to_string(), "BB4");
    }
}
