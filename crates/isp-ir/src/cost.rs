//! Instruction categorisation and counting.
//!
//! The paper's Table I inventories the PTX instructions of the bilateral
//! kernel per region, "categorised based on keywords" (`add.s32` and
//! `add.f32` both count as `add`). [`InstrCategory`] reproduces exactly that
//! keyword-level grouping, and [`InstrHistogram`] accumulates static or
//! dynamic counts over kernels or regions.

use crate::instr::{BinOp, Instr, Terminator, UnOp};
use std::collections::BTreeMap;
use std::fmt;

/// Keyword-level instruction category (the paper's Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrCategory {
    Add,
    Sub,
    Mul,
    Mad,
    Div,
    Rem,
    Min,
    Max,
    Abs,
    Neg,
    Mov,
    Logic,
    Shift,
    Setp,
    Selp,
    Cvt,
    /// Special-function-unit ops: exp/log/sqrt/rsqrt.
    Sfu,
    Bra,
    Ld,
    /// 2D texture fetches (hardware border handling).
    Tex,
    St,
    /// Shared-memory accesses (loads and stores).
    Shared,
    /// Block-wide barriers.
    Bar2,
    Ret,
}

impl InstrCategory {
    /// All categories in display order.
    pub const ALL: [InstrCategory; 24] = [
        InstrCategory::Add,
        InstrCategory::Sub,
        InstrCategory::Mul,
        InstrCategory::Mad,
        InstrCategory::Div,
        InstrCategory::Rem,
        InstrCategory::Min,
        InstrCategory::Max,
        InstrCategory::Abs,
        InstrCategory::Neg,
        InstrCategory::Mov,
        InstrCategory::Logic,
        InstrCategory::Shift,
        InstrCategory::Setp,
        InstrCategory::Selp,
        InstrCategory::Cvt,
        InstrCategory::Sfu,
        InstrCategory::Bra,
        InstrCategory::Ld,
        InstrCategory::Tex,
        InstrCategory::St,
        InstrCategory::Shared,
        InstrCategory::Bar2,
        InstrCategory::Ret,
    ];

    /// Dense index of this category in [`InstrCategory::ALL`] — the array
    /// slot flat per-category accounting (the decoded interpreter's
    /// histogram) uses instead of a map lookup.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Table-row keyword.
    pub fn name(&self) -> &'static str {
        match self {
            InstrCategory::Add => "add",
            InstrCategory::Sub => "sub",
            InstrCategory::Mul => "mul",
            InstrCategory::Mad => "mad",
            InstrCategory::Div => "div",
            InstrCategory::Rem => "rem",
            InstrCategory::Min => "min",
            InstrCategory::Max => "max",
            InstrCategory::Abs => "abs",
            InstrCategory::Neg => "neg",
            InstrCategory::Mov => "mov",
            InstrCategory::Logic => "logic",
            InstrCategory::Shift => "shift",
            InstrCategory::Setp => "setp",
            InstrCategory::Selp => "selp",
            InstrCategory::Cvt => "cvt",
            InstrCategory::Sfu => "sfu",
            InstrCategory::Bra => "bra",
            InstrCategory::Ld => "ld",
            InstrCategory::Tex => "tex",
            InstrCategory::St => "st",
            InstrCategory::Shared => "shared",
            InstrCategory::Bar2 => "bar",
            InstrCategory::Ret => "ret",
        }
    }

    /// Whether the category executes on the arithmetic (integer/float ALU)
    /// pipeline. The paper's key Table I observation: ISP's savings
    /// concentrate in arithmetic instructions (max, add, cvt) used by
    /// address clamping.
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            InstrCategory::Add
                | InstrCategory::Sub
                | InstrCategory::Mul
                | InstrCategory::Mad
                | InstrCategory::Div
                | InstrCategory::Rem
                | InstrCategory::Min
                | InstrCategory::Max
                | InstrCategory::Abs
                | InstrCategory::Neg
                | InstrCategory::Logic
                | InstrCategory::Shift
                | InstrCategory::Setp
                | InstrCategory::Selp
                | InstrCategory::Cvt
        )
    }

    /// Classify a non-terminator instruction.
    pub fn of_instr(instr: &Instr) -> InstrCategory {
        match instr {
            Instr::Bin { op, .. } => match op {
                BinOp::Add => InstrCategory::Add,
                BinOp::Sub => InstrCategory::Sub,
                BinOp::Mul => InstrCategory::Mul,
                BinOp::Div => InstrCategory::Div,
                BinOp::Rem => InstrCategory::Rem,
                BinOp::Min => InstrCategory::Min,
                BinOp::Max => InstrCategory::Max,
                BinOp::And | BinOp::Or | BinOp::Xor => InstrCategory::Logic,
                BinOp::Shl | BinOp::Shr => InstrCategory::Shift,
            },
            Instr::Mad { .. } => InstrCategory::Mad,
            Instr::Un { op, .. } => match op {
                UnOp::Mov => InstrCategory::Mov,
                UnOp::Neg => InstrCategory::Neg,
                UnOp::Abs => InstrCategory::Abs,
                UnOp::Not => InstrCategory::Logic,
                UnOp::Floor => InstrCategory::Cvt,
                UnOp::Exp | UnOp::Log | UnOp::Sqrt | UnOp::Rsqrt => InstrCategory::Sfu,
            },
            Instr::Cvt { .. } => InstrCategory::Cvt,
            Instr::SetP { .. } => InstrCategory::Setp,
            Instr::SelP { .. } => InstrCategory::Selp,
            // Special-register reads and parameter loads compile to `mov`.
            Instr::Sreg { .. } | Instr::LdParam { .. } => InstrCategory::Mov,
            Instr::Ld { .. } => InstrCategory::Ld,
            Instr::Tex { .. } => InstrCategory::Tex,
            Instr::St { .. } => InstrCategory::St,
            Instr::Lds { .. } | Instr::Sts { .. } => InstrCategory::Shared,
            Instr::Bar => InstrCategory::Bar2,
        }
    }

    /// Classify a terminator.
    pub fn of_terminator(t: &Terminator) -> InstrCategory {
        match t {
            Terminator::Br { .. } | Terminator::CondBr { .. } => InstrCategory::Bra,
            Terminator::Ret => InstrCategory::Ret,
        }
    }
}

impl fmt::Display for InstrCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-category instruction count (static or dynamic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrHistogram {
    counts: BTreeMap<InstrCategory, u64>,
}

impl InstrHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` occurrences of `cat`.
    pub fn add(&mut self, cat: InstrCategory, n: u64) {
        *self.counts.entry(cat).or_insert(0) += n;
    }

    /// Count of one category.
    pub fn get(&self, cat: InstrCategory) -> u64 {
        self.counts.get(&cat).copied().unwrap_or(0)
    }

    /// Total over all categories.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total over arithmetic-pipeline categories only.
    pub fn arithmetic_total(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(c, _)| c.is_arithmetic())
            .map(|(_, &n)| n)
            .sum()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &InstrHistogram) {
        for (&cat, &n) in &other.counts {
            self.add(cat, n);
        }
    }

    /// Scale every count by `factor` (used by region-sampled simulation to
    /// extrapolate one representative block to `n_block(p)` blocks).
    pub fn scaled(&self, factor: u64) -> InstrHistogram {
        InstrHistogram {
            counts: self.counts.iter().map(|(&c, &n)| (c, n * factor)).collect(),
        }
    }

    /// Iterate over non-zero `(category, count)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrCategory, u64)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// Static histogram of a whole kernel (each instruction counted once).
    pub fn of_kernel(kernel: &crate::kernel::Kernel) -> InstrHistogram {
        let mut h = InstrHistogram::new();
        for b in &kernel.blocks {
            for i in &b.instrs {
                h.add(InstrCategory::of_instr(i), 1);
            }
            h.add(InstrCategory::of_terminator(&b.terminator), 1);
        }
        h
    }

    /// Static histogram of a subset of blocks (e.g. one ISP region).
    pub fn of_blocks(
        kernel: &crate::kernel::Kernel,
        ids: impl IntoIterator<Item = crate::kernel::BlockId>,
    ) -> InstrHistogram {
        let mut h = InstrHistogram::new();
        for id in ids {
            let b = kernel.block(id);
            for i in &b.instrs {
                h.add(InstrCategory::of_instr(i), 1);
            }
            h.add(InstrCategory::of_terminator(&b.terminator), 1);
        }
        h
    }
}

impl fmt::Display for InstrHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (cat, n) in self.iter() {
            if n == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{cat}:{n}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::instr::{CmpOp, SReg};
    use crate::types::Ty;

    #[test]
    fn index_matches_all_order() {
        for (i, cat) in InstrCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i, "{cat}");
        }
    }

    #[test]
    fn categorisation_merges_types() {
        let mut b = IrBuilder::new("k", 1);
        // add.s32 and add.f32 both count as `add`.
        let x = b.sreg(SReg::TidX);
        let _ = b.bin(BinOp::Add, Ty::S32, x, 1i32);
        let f = b.mov(Ty::F32, 1.0f32);
        let _ = b.bin(BinOp::Add, Ty::F32, f, 2.0f32);
        b.ret();
        let k = b.finish();
        let h = InstrHistogram::of_kernel(&k);
        assert_eq!(h.get(InstrCategory::Add), 2);
        assert_eq!(h.get(InstrCategory::Mov), 2); // sreg + mov
        assert_eq!(h.get(InstrCategory::Ret), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn arithmetic_classification() {
        assert!(InstrCategory::Max.is_arithmetic());
        assert!(InstrCategory::Cvt.is_arithmetic());
        assert!(InstrCategory::Setp.is_arithmetic());
        assert!(!InstrCategory::Ld.is_arithmetic());
        assert!(!InstrCategory::Bra.is_arithmetic());
        assert!(!InstrCategory::Sfu.is_arithmetic());
        assert!(!InstrCategory::Mov.is_arithmetic());
    }

    #[test]
    fn histogram_merge_and_scale() {
        let mut a = InstrHistogram::new();
        a.add(InstrCategory::Add, 3);
        a.add(InstrCategory::Ld, 1);
        let mut b = InstrHistogram::new();
        b.add(InstrCategory::Add, 2);
        a.merge(&b);
        assert_eq!(a.get(InstrCategory::Add), 5);
        let s = a.scaled(10);
        assert_eq!(s.get(InstrCategory::Add), 50);
        assert_eq!(s.get(InstrCategory::Ld), 10);
        assert_eq!(s.total(), 60);
    }

    #[test]
    fn arithmetic_total() {
        let mut h = InstrHistogram::new();
        h.add(InstrCategory::Add, 4);
        h.add(InstrCategory::Ld, 7);
        h.add(InstrCategory::Max, 2);
        h.add(InstrCategory::Bra, 5);
        assert_eq!(h.arithmetic_total(), 6);
        assert_eq!(h.total(), 18);
    }

    #[test]
    fn per_block_histograms() {
        let mut b = IrBuilder::new("k", 0);
        let other = b.create_block("other");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 1i32);
        let _ = b.selp(Ty::S32, 1i32, 2i32, p);
        b.br(other);
        b.switch_to(other);
        b.ret();
        let k = b.finish();
        let h0 = InstrHistogram::of_blocks(&k, [k.entry()]);
        assert_eq!(h0.get(InstrCategory::Setp), 1);
        assert_eq!(h0.get(InstrCategory::Selp), 1);
        assert_eq!(h0.get(InstrCategory::Bra), 1);
        assert_eq!(h0.get(InstrCategory::Ret), 0);
        let h1 = InstrHistogram::of_blocks(&k, [crate::kernel::BlockId(1)]);
        assert_eq!(h1.total(), 1);
    }

    #[test]
    fn display_formats() {
        let mut h = InstrHistogram::new();
        assert_eq!(h.to_string(), "(empty)");
        h.add(InstrCategory::Add, 2);
        h.add(InstrCategory::St, 1);
        assert_eq!(h.to_string(), "add:2, st:1");
    }

    #[test]
    fn sfu_and_floor_categories() {
        let mut b = IrBuilder::new("k", 0);
        let f = b.mov(Ty::F32, 2.0f32);
        let _ = b.un(UnOp::Exp, Ty::F32, f);
        let _ = b.un(UnOp::Sqrt, Ty::F32, f);
        let _ = b.un(UnOp::Floor, Ty::F32, f);
        b.ret();
        let k = b.finish();
        let h = InstrHistogram::of_kernel(&k);
        assert_eq!(h.get(InstrCategory::Sfu), 2);
        assert_eq!(h.get(InstrCategory::Cvt), 1);
    }
}
