//! A minimal, dependency-free stand-in for the subset of `rayon` this
//! workspace uses: `into_par_iter()` on integer ranges, `par_iter()` on
//! slices and `Vec`s, then `.map(..).collect::<Vec<_>>()`.
//!
//! Work is fanned out over scoped OS threads with **atomic
//! self-scheduling**: the input is pre-split into many fixed-size contiguous
//! chunks and workers pull the next chunk index off a shared counter, so a
//! worker that lands on cheap items grabs more chunks instead of idling
//! behind one stuck with expensive items (the decoded/replay engines make
//! per-block cost highly non-uniform: a replayed interior block is many
//! times cheaper than a recording or deopting border block). Each chunk's
//! result lands in its own slot and slots are concatenated **in input
//! order**, so `collect` returns exactly what the serial `Iterator`
//! equivalent would — parallelism never changes results, which is what the
//! simulator's determinism guarantee rests on. On a single-core host (or
//! for tiny inputs) everything runs inline with zero thread overhead.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be pinned with the `ISP_SIM_THREADS` environment variable (any value
//! ≥ 1), which benches and CI use for reproducible machine load.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

thread_local! {
    /// Per-thread ceiling on the worker count, set by [`with_worker_cap`].
    /// `None` means uncapped (the global default applies).
    static WORKER_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with this thread's parallel fan-out capped at `cap` workers
/// (clamped to ≥ 1). Parallel loops started *from the calling thread* while
/// `f` runs use `min(threads(), cap)` workers; the previous cap is restored
/// afterwards (panic-safe), and nested scopes tighten — an inner cap can
/// never widen an outer one. This is how engine shards divide one host
/// between them: each shard's executor thread caps its slice, so shards
/// don't oversubscribe each other's launches.
pub fn with_worker_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_CAP.with(|c| c.set(self.0));
        }
    }
    let cap = cap.max(1);
    let prev = WORKER_CAP.with(|c| {
        let prev = c.get();
        c.set(Some(prev.map_or(cap, |p| p.min(cap))));
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Number of worker threads to fan out over: the `ISP_SIM_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// host's available parallelism — further limited by the calling thread's
/// [`with_worker_cap`] scope, if any.
pub fn threads() -> usize {
    let base = base_threads();
    match WORKER_CAP.with(|c| c.get()) {
        Some(cap) => base.min(cap),
        None => base,
    }
}

fn base_threads() -> usize {
    if let Ok(v) = std::env::var("ISP_SIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `items` into contiguous fixed-size chunks (several per worker, so
/// self-scheduling has something to balance with; capped so huge inputs
/// still amortise the per-chunk bookkeeping).
fn split_chunks<I>(items: Vec<I>, workers: usize) -> Vec<Vec<I>> {
    let n = items.len();
    let chunk_len = n.div_ceil(workers * 8).clamp(1, 1024);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(n.div_ceil(chunk_len));
    let mut items = items;
    // Split back-to-front so each split_off is O(chunk).
    let mut tail = Vec::new();
    while items.len() > chunk_len {
        tail.push(items.split_off(items.len() - chunk_len));
    }
    chunks.push(items);
    chunks.extend(tail.into_iter().rev());
    chunks
}

/// Run `work` over pre-split chunks under atomic self-scheduling: `workers`
/// scoped threads repeatedly claim the next unclaimed chunk index and write
/// that chunk's result into its index slot, preserving input order.
fn self_schedule<I, R, W>(chunks: Vec<Vec<I>>, workers: usize, work: W) -> Vec<R>
where
    I: Send,
    R: Send,
    W: Fn(Vec<I>) -> R + Sync,
{
    let num_chunks = chunks.len();
    let slots: Vec<Mutex<Option<Vec<I>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let (slots, results, next, work) = (&slots, &results, &next, &work);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(num_chunks) {
            scope.spawn(move || loop {
                let ci = next.fetch_add(1, Ordering::Relaxed);
                if ci >= num_chunks {
                    break;
                }
                let chunk = slots[ci]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("chunk claimed once");
                *results[ci].lock().unwrap() = Some(work(chunk));
            });
        }
    });
    results
        .iter()
        .map(|r| r.lock().unwrap().take().expect("every chunk completed"))
        .collect()
}

/// Conversion into a parallel iterator (the `rayon::iter::IntoParallelIterator`
/// analogue). Eagerly materialises the item sequence; the workspace only
/// parallelises over block coordinates and row indices, so the sequences are
/// short relative to the per-item work.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` on borrowed collections (the `IntoParallelRefIterator`
/// analogue).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Parallel iterator over references to the collection's elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialised parallel iterator: a sequence of items awaiting a mapped
/// reduction.
pub struct ParIter<I: Send> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Map every item through `f`, in parallel at collection time.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item (parallel side-effect form).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        self.map(f).run();
    }

    /// Fold with one accumulator per contiguous in-order chunk (the `rayon`
    /// `fold(identity, fold_op)` analogue). Each worker starts from
    /// `identity()` and folds its chunk's items **in input order**;
    /// `collect::<Vec<Acc>>()` then yields the per-chunk accumulators in
    /// chunk order, so a subsequent in-order reduction is bit-identical to a
    /// serial fold. This is what lets a caller thread mutable per-worker
    /// state (a scratch arena) through a parallel loop without locking.
    pub fn fold<Acc, ID, F>(self, identity: ID, fold_op: F) -> ParFold<I, ID, F>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync,
        F: Fn(Acc, I) -> Acc + Sync,
    {
        ParFold {
            items: self.items,
            identity,
            fold_op,
        }
    }
}

/// The result of [`ParIter::map`]: items plus the mapping function, executed
/// on `collect`.
pub struct ParMap<I: Send, F> {
    items: Vec<I>,
    f: F,
}

impl<I, R, F> ParMap<I, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        let ParMap { items, f } = self;
        let n = items.len();
        let workers = threads().min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Self-scheduled chunks; per-chunk result vectors concatenate in
        // chunk (input) order so the output is order-identical to a serial
        // map regardless of which worker ran which chunk.
        let chunks = split_chunks(items, workers);
        let parts = self_schedule(chunks, workers, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Execute the map and gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }
}

/// The result of [`ParIter::fold`]: items plus the identity and fold
/// functions, executed on `collect`.
pub struct ParFold<I: Send, ID, F> {
    items: Vec<I>,
    identity: ID,
    fold_op: F,
}

impl<I, Acc, ID, F> ParFold<I, ID, F>
where
    I: Send,
    Acc: Send,
    ID: Fn() -> Acc + Sync,
    F: Fn(Acc, I) -> Acc + Sync,
{
    fn run(self) -> Vec<Acc> {
        let ParFold {
            items,
            identity,
            fold_op,
        } = self;
        let n = items.len();
        let workers = threads().min(n);
        if workers <= 1 {
            return vec![items.into_iter().fold(identity(), fold_op)];
        }
        // Same self-scheduled chunking as ParMap::run. Crucially each CHUNK
        // gets a fresh identity accumulator (not each worker): accumulators
        // land in chunk-index slots, so concatenating them reproduces input
        // order even though a worker may fold non-adjacent chunks.
        let chunks = split_chunks(items, workers);
        self_schedule(chunks, workers, |chunk| {
            chunk.into_iter().fold(identity(), &fold_op)
        })
    }

    /// Execute the fold and gather the per-chunk accumulators in chunk
    /// (input) order.
    pub fn collect<C: From<Vec<Acc>>>(self) -> C {
        C::from(self.run())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_preserves_order() {
        let out: Vec<usize> = (0usize..1000).into_par_iter().map(|i| i * 2).collect();
        let expect: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let data: Vec<i64> = (0..513).collect();
        let out: Vec<i64> = data.par_iter().map(|&v| v * v - 1).collect();
        let expect: Vec<i64> = data.iter().map(|&v| v * v - 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u8> = (0u8..0).into_par_iter().map(|v| v).collect();
        assert!(out.is_empty());
        let out: Vec<u8> = (5u8..6).into_par_iter().map(|v| v + 1).collect();
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn fold_chunks_concatenate_to_serial_order() {
        // Each chunk accumulator collects its items in order; flattening the
        // per-chunk results must reproduce the input exactly.
        let folded: Vec<Vec<u32>> = (0u32..1000)
            .into_par_iter()
            .fold(Vec::new, |mut acc, v| {
                acc.push(v);
                acc
            })
            .collect();
        let flat: Vec<u32> = folded.into_iter().flatten().collect();
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(flat, expect);
    }

    #[test]
    fn fold_sums_match_serial() {
        let parts: Vec<u64> = (1u64..10_001)
            .into_par_iter()
            .fold(|| 0u64, |acc, v| acc + v)
            .collect();
        assert_eq!(parts.iter().sum::<u64>(), 50_005_000);
    }

    #[test]
    fn fold_empty_and_single() {
        let parts: Vec<u64> = (0u64..0)
            .into_par_iter()
            .fold(|| 7u64, |acc, v| acc + v)
            .collect();
        // Zero items, zero workers: a single identity accumulator.
        assert_eq!(parts, vec![7]);
        let parts: Vec<u64> = (3u64..4)
            .into_par_iter()
            .fold(|| 0u64, |acc, v| acc + v)
            .collect();
        assert_eq!(parts, vec![3]);
    }

    /// One test owns the process-global `ISP_SIM_THREADS` mutation (the
    /// sibling tests are order-correct under *any* worker count, so a
    /// transient override cannot fail them), covering both the env override
    /// and input-order preservation under genuinely racing workers —
    /// pinning 4 workers makes the latter hold even on a single-core host.
    #[test]
    fn env_override_pins_workers_and_self_scheduling_preserves_order() {
        std::env::set_var("ISP_SIM_THREADS", "3");
        assert_eq!(super::threads(), 3);
        // Garbage and zero fall back to the host default.
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        std::env::set_var("ISP_SIM_THREADS", "0");
        assert_eq!(super::threads(), host);
        std::env::set_var("ISP_SIM_THREADS", "lots");
        assert_eq!(super::threads(), host);

        // Many chunks over 4 pinned workers with heavily skewed per-item
        // cost, so workers genuinely race for chunks: the concatenated
        // output must still be input-ordered.
        std::env::set_var("ISP_SIM_THREADS", "4");
        let n = 10_000usize;
        let expect: Vec<usize> = (0..n).collect();
        let out: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|i| {
                if i % 97 == 0 {
                    // Occasional expensive item.
                    std::hint::black_box((0..2_000).fold(i, |a, b| a ^ b));
                }
                i
            })
            .collect();
        assert_eq!(out, expect);
        // Same property through the fold path: flattened per-chunk
        // accumulators reproduce input order.
        let folded: Vec<Vec<usize>> = (0..n)
            .into_par_iter()
            .fold(Vec::new, |mut acc, v| {
                if v % 97 == 0 {
                    std::hint::black_box((0..2_000).fold(v, |a, b| a ^ b));
                }
                acc.push(v);
                acc
            })
            .collect();
        assert!(folded.len() > 8, "input must split into many chunks");
        let flat: Vec<usize> = folded.into_iter().flatten().collect();
        assert_eq!(flat, expect);
        std::env::remove_var("ISP_SIM_THREADS");
    }

    #[test]
    fn worker_cap_scopes_and_restores() {
        // (`ISP_SIM_THREADS` belongs to a sibling test, so assertions here
        // avoid comparing `threads()` against a baseline that test may move;
        // the cap cell itself is race-free — it is thread-local.)
        let inside = super::with_worker_cap(1, || {
            // Nested scopes tighten, never widen.
            assert_eq!(super::with_worker_cap(8, super::threads), 1);
            super::threads()
        });
        assert_eq!(inside, 1);
        assert_eq!(
            super::WORKER_CAP.with(|c| c.get()),
            None,
            "cap restored after the scope"
        );
        // Capped loops still produce input-ordered results.
        let out: Vec<u32> =
            super::with_worker_cap(2, || (0u32..500).into_par_iter().map(|i| i + 1).collect());
        let expect: Vec<u32> = (1..=500).collect();
        assert_eq!(out, expect);
        // The cap is per-thread: another thread is unaffected.
        super::with_worker_cap(1, || {
            let other = std::thread::spawn(|| super::WORKER_CAP.with(|c| c.get()))
                .join()
                .unwrap();
            assert_eq!(other, None);
        });
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (1u64..101).into_par_iter().for_each(|v| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
