//! A minimal, dependency-free stand-in for the subset of `rayon` this
//! workspace uses: `into_par_iter()` on integer ranges, `par_iter()` on
//! slices and `Vec`s, then `.map(..).collect::<Vec<_>>()`.
//!
//! Work is fanned out over scoped OS threads (one contiguous chunk per
//! available core). Each chunk's results are produced independently and
//! concatenated **in input order**, so `collect` returns exactly what the
//! serial `Iterator` equivalent would — parallelism never changes results,
//! which is what the simulator's determinism guarantee rests on. On a
//! single-core host (or for tiny inputs) everything runs inline with zero
//! thread overhead.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Number of worker threads to fan out over.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator (the `rayon::iter::IntoParallelIterator`
/// analogue). Eagerly materialises the item sequence; the workspace only
/// parallelises over block coordinates and row indices, so the sequences are
/// short relative to the per-item work.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` on borrowed collections (the `IntoParallelRefIterator`
/// analogue).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Parallel iterator over references to the collection's elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialised parallel iterator: a sequence of items awaiting a mapped
/// reduction.
pub struct ParIter<I: Send> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Map every item through `f`, in parallel at collection time.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item (parallel side-effect form).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        self.map(f).run();
    }

    /// Fold with one accumulator per contiguous in-order chunk (the `rayon`
    /// `fold(identity, fold_op)` analogue). Each worker starts from
    /// `identity()` and folds its chunk's items **in input order**;
    /// `collect::<Vec<Acc>>()` then yields the per-chunk accumulators in
    /// chunk order, so a subsequent in-order reduction is bit-identical to a
    /// serial fold. This is what lets a caller thread mutable per-worker
    /// state (a scratch arena) through a parallel loop without locking.
    pub fn fold<Acc, ID, F>(self, identity: ID, fold_op: F) -> ParFold<I, ID, F>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync,
        F: Fn(Acc, I) -> Acc + Sync,
    {
        ParFold {
            items: self.items,
            identity,
            fold_op,
        }
    }
}

/// The result of [`ParIter::map`]: items plus the mapping function, executed
/// on `collect`.
pub struct ParMap<I: Send, F> {
    items: Vec<I>,
    f: F,
}

impl<I, R, F> ParMap<I, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        let ParMap { items, f } = self;
        let n = items.len();
        let workers = threads().min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Contiguous chunks, one per worker; chunk results are concatenated
        // in input order so the output is order-identical to a serial map.
        let chunk_len = n.div_ceil(workers);
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
        let mut items = items;
        // Split back-to-front so each split_off is O(chunk).
        let mut tail = Vec::new();
        while items.len() > chunk_len {
            tail.push(items.split_off(items.len() - chunk_len));
        }
        chunks.push(items);
        chunks.extend(tail.into_iter().rev());

        let f = &f;
        let mut results: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect();
        });
        let mut out = Vec::with_capacity(n);
        for part in results {
            out.extend(part);
        }
        out
    }

    /// Execute the map and gather results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }
}

/// The result of [`ParIter::fold`]: items plus the identity and fold
/// functions, executed on `collect`.
pub struct ParFold<I: Send, ID, F> {
    items: Vec<I>,
    identity: ID,
    fold_op: F,
}

impl<I, Acc, ID, F> ParFold<I, ID, F>
where
    I: Send,
    Acc: Send,
    ID: Fn() -> Acc + Sync,
    F: Fn(Acc, I) -> Acc + Sync,
{
    fn run(self) -> Vec<Acc> {
        let ParFold {
            items,
            identity,
            fold_op,
        } = self;
        let n = items.len();
        let workers = threads().min(n);
        if workers <= 1 {
            return vec![items.into_iter().fold(identity(), fold_op)];
        }
        // Same contiguous chunking as ParMap::run: chunk accumulators come
        // back in input order.
        let chunk_len = n.div_ceil(workers);
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
        let mut items = items;
        let mut tail = Vec::new();
        while items.len() > chunk_len {
            tail.push(items.split_off(items.len() - chunk_len));
        }
        chunks.push(items);
        chunks.extend(tail.into_iter().rev());

        let identity = &identity;
        let fold_op = &fold_op;
        let mut results: Vec<Acc> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().fold(identity(), fold_op)))
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("parallel fold worker panicked"))
                .collect();
        });
        results
    }

    /// Execute the fold and gather the per-chunk accumulators in chunk
    /// (input) order.
    pub fn collect<C: From<Vec<Acc>>>(self) -> C {
        C::from(self.run())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_preserves_order() {
        let out: Vec<usize> = (0usize..1000).into_par_iter().map(|i| i * 2).collect();
        let expect: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn slice_par_iter_matches_serial() {
        let data: Vec<i64> = (0..513).collect();
        let out: Vec<i64> = data.par_iter().map(|&v| v * v - 1).collect();
        let expect: Vec<i64> = data.iter().map(|&v| v * v - 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u8> = (0u8..0).into_par_iter().map(|v| v).collect();
        assert!(out.is_empty());
        let out: Vec<u8> = (5u8..6).into_par_iter().map(|v| v + 1).collect();
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn fold_chunks_concatenate_to_serial_order() {
        // Each chunk accumulator collects its items in order; flattening the
        // per-chunk results must reproduce the input exactly.
        let folded: Vec<Vec<u32>> = (0u32..1000)
            .into_par_iter()
            .fold(Vec::new, |mut acc, v| {
                acc.push(v);
                acc
            })
            .collect();
        let flat: Vec<u32> = folded.into_iter().flatten().collect();
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(flat, expect);
    }

    #[test]
    fn fold_sums_match_serial() {
        let parts: Vec<u64> = (1u64..10_001)
            .into_par_iter()
            .fold(|| 0u64, |acc, v| acc + v)
            .collect();
        assert_eq!(parts.iter().sum::<u64>(), 50_005_000);
    }

    #[test]
    fn fold_empty_and_single() {
        let parts: Vec<u64> = (0u64..0)
            .into_par_iter()
            .fold(|| 7u64, |acc, v| acc + v)
            .collect();
        // Zero items, zero workers: a single identity accumulator.
        assert_eq!(parts, vec![7]);
        let parts: Vec<u64> = (3u64..4)
            .into_par_iter()
            .fold(|| 0u64, |acc, v| acc + v)
            .collect();
        assert_eq!(parts, vec![3]);
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (1u64..101).into_par_iter().for_each(|v| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
