//! Bounded FIFO admission queue. Admission control is the backpressure
//! mechanism: beyond the configured depth, open-loop arrivals are rejected
//! deterministically (closed-loop clients retry after their think time),
//! so queue depth — and therefore queueing latency — is bounded by
//! construction rather than by luck.

use isp_exec::Request;
use std::collections::VecDeque;

/// One request waiting in (or flowing through) the server, stamped with
/// its virtual arrival time.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// Dense request id in admission order.
    pub id: u64,
    /// Issuing closed-loop client, if any (`None` for open-loop arrivals).
    pub client: Option<usize>,
    /// The work itself.
    pub request: Request,
    /// Virtual arrival time in nanoseconds.
    pub arrival_ns: u64,
}

/// FIFO queue with a hard depth cap and bookkeeping for the report.
#[derive(Debug)]
pub struct AdmissionQueue {
    items: VecDeque<QueuedRequest>,
    cap: usize,
    admitted: u64,
    rejected: u64,
    max_depth: usize,
}

impl AdmissionQueue {
    /// An empty queue admitting at most `cap` waiting requests.
    pub fn new(cap: usize) -> Self {
        AdmissionQueue {
            items: VecDeque::new(),
            cap,
            admitted: 0,
            rejected: 0,
            max_depth: 0,
        }
    }

    /// Try to admit a request: `true` and enqueued if there is room,
    /// `false` (rejected, counted) if the queue is at its cap.
    pub fn offer(&mut self, req: QueuedRequest) -> bool {
        if self.items.len() >= self.cap {
            self.rejected += 1;
            return false;
        }
        self.items.push_back(req);
        self.admitted += 1;
        self.max_depth = self.max_depth.max(self.items.len());
        true
    }

    /// Waiting requests, oldest first.
    pub fn waiting(&self) -> impl Iterator<Item = &QueuedRequest> {
        self.items.iter()
    }

    /// Remove and return the requests at the given queue positions
    /// (ascending, deduplicated by the caller), preserving FIFO order of
    /// the survivors. Used by the batcher to pull a head-of-line batch.
    pub fn take(&mut self, positions: &[usize]) -> Vec<QueuedRequest> {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let mut taken = Vec::with_capacity(positions.len());
        for &pos in positions.iter().rev() {
            taken.push(self.items.remove(pos).expect("position in bounds"));
        }
        taken.reverse();
        taken
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total requests rejected at admission so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The configured depth cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_dsl::pipeline::Policy;
    use isp_exec::Request;
    use isp_filters::apps;
    use isp_image::BorderPattern;

    fn req(id: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            client: None,
            request: Request::paper(
                apps::by_name("gaussian").unwrap(),
                BorderPattern::Clamp,
                64,
                Policy::Naive,
            ),
            arrival_ns: id,
        }
    }

    #[test]
    fn cap_bounds_depth_and_counts_rejects() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.offer(req(0)));
        assert!(q.offer(req(1)));
        assert!(!q.offer(req(2)));
        assert_eq!((q.admitted(), q.rejected(), q.depth()), (2, 1, 2));
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn take_preserves_fifo_order() {
        let mut q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.offer(req(i));
        }
        let taken = q.take(&[0, 2, 3]);
        assert_eq!(taken.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 2, 3]);
        assert_eq!(q.waiting().map(|r| r.id).collect::<Vec<_>>(), [1, 4]);
    }
}
