//! Model-driven routing: the dispatcher asks every idle shard's engine to
//! evaluate the paper's Eq. 1-10 cost model for the batch at hand
//! ([`isp_exec::Engine::predict`] — per-region weighted instruction costs
//! x Eq. (8) block populations / occupancy, converted to device
//! milliseconds) and sends the batch to the shard predicted to finish it
//! first. The prediction is per (device, variant): a `Model` policy
//! request may be routed to the Kepler shard as a naive kernel and to the
//! Turing shard as an ISP kernel, because `predict` resolves the policy
//! against each device's own model.

use crate::shard::Shard;
use isp_exec::Request;

/// How the dispatcher picks a shard for each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Eq. 1-10 cost-model routing: argmin over idle shards of the
    /// predicted batch milliseconds on that shard's device.
    Model,
    /// Always the lowest-index idle shard — the FIFO baseline (with a
    /// single shard this is classic FIFO serving).
    Fixed,
}

/// Choose a shard among `idle` (indices into `shards`) for a batch whose
/// head request is `head` and which contains `batch_len` images. Returns
/// the chosen index; ties break toward the lower shard index so routing
/// is deterministic.
pub fn route(
    routing: Routing,
    shards: &[Shard],
    idle: &[usize],
    head: &Request,
    batch_len: usize,
) -> usize {
    debug_assert!(!idle.is_empty());
    match routing {
        Routing::Fixed => idle[0],
        Routing::Model => {
            let mut best = idle[0];
            let mut best_ms = f64::INFINITY;
            for &i in idle {
                let ms = shards[i].predict(head).est_ms * batch_len as f64;
                if ms < best_ms {
                    best_ms = ms;
                    best = i;
                }
            }
            best
        }
    }
}
