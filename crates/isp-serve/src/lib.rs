//! # isp-serve
//!
//! A deterministic serving layer over sharded [`isp_exec::Engine`]s: the
//! systems experiment the paper's cost model makes possible. Requests
//! arrive on a **virtual clock** (u64 nanoseconds), wait in a bounded
//! admission queue, get folded into **batches** of compatible work (same
//! kernel fingerprint x geometry x border policy -> one shared
//! compile/plan, N images through one launch path), and a **model-driven
//! dispatcher** evaluates the paper's Eq. 1-10 cost model per (device,
//! variant) to route each batch to the engine shard predicted to finish
//! it fastest.
//!
//! The fleet is heterogeneous by construction — one shard per simulated
//! device (Kepler GTX680 + Turing RTX2080 by default), each owning its own
//! [`isp_exec::Engine`] with warm decode/trace caches and a persistent
//! worker thread capped to its share of the host's threads
//! (`shim_rayon::with_worker_cap`), so shards execute concurrently in wall
//! time without oversubscribing each other.
//!
//! Determinism is the load-bearing property: service time is the
//! *simulated* cycle count of each outcome converted through the shard
//! device's clock, arrivals come from a seeded [`rand::rngs::StdRng`], and
//! the discrete-event loop harvests every in-flight batch before advancing
//! the clock — so latency percentiles, rejection counts, and queue depths
//! are bit-stable across runs and machines, while batches still execute in
//! parallel across shards in wall time. Batched execution is differential-
//! tested bit-identical to sequential single-engine runs (pixels,
//! counters, per-region journals).
//!
//! ```text
//!  arrivals ──> admission queue ──> batcher ──> dispatcher ──> shards
//!   (seeded)    (bounded, FIFO)     (compat      (Eq. 1-10       (one
//!                rejects beyond      key -> one    predict per     engine
//!                the cap)            plan, N       idle shard)     per
//!                                    images)                       device)
//! ```

pub mod batch;
pub mod dispatch;
pub mod queue;
pub mod server;
pub mod shard;

pub use batch::{compat_key, form_batch};
pub use dispatch::Routing;
pub use queue::{AdmissionQueue, QueuedRequest};
pub use server::{
    Arrivals, RequestRecord, ServeConfig, ServeReport, Server, ShardReport, Workload,
};
pub use shard::{Shard, ShardSpec};

/// Nanoseconds of virtual time per simulated millisecond.
pub const NS_PER_MS: f64 = 1.0e6;

/// Convert simulated milliseconds on a device to virtual nanoseconds.
pub fn ms_to_ns(ms: f64) -> u64 {
    (ms * NS_PER_MS).round() as u64
}

/// Convert virtual nanoseconds to cycles on a device clocked at `ghz`
/// (1 GHz = one cycle per nanosecond).
pub fn ns_to_cycles(ns: u64, ghz: f64) -> u64 {
    (ns as f64 * ghz).round() as u64
}

/// The `p`-th percentile (0-100) of an unsorted sample by nearest-rank,
/// the convention serving dashboards use: the smallest value such that at
/// least `p` percent of the sample is <= it. Returns 0.0 on an empty
/// sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Order-insensitive.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
    }
}
