//! Engine shards: one per simulated device, each owning its own
//! [`Engine`] (with warm kernel/plan/decode/trace caches), its own
//! [`RecordingProbe`] (so the exported Chrome trace shows one process per
//! shard), and a persistent worker thread. The worker runs every batch
//! under `rayon::with_worker_cap(cap, ..)` so the shards split the host's
//! threads instead of oversubscribing each other — shard-level wall-clock
//! parallelism composes with the engine's intra-launch parallelism.

use isp_exec::{CacheStats, Engine, Outcome, Prediction, Request};
use isp_probe::{ProbeHandle, RecordingProbe, TraceGroup};
use isp_sim::{DeviceSpec, SimError};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Blueprint for one shard of the fleet.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The simulated device this shard's engine models.
    pub device: DeviceSpec,
    /// Thread budget for this shard's launches (its `with_worker_cap`).
    pub worker_cap: usize,
}

/// A running shard: engine + probe + worker thread, plus the virtual-time
/// bookkeeping the server's event loop maintains.
pub struct Shard {
    /// Display name, `shard<i>:<DEVICE>`.
    pub name: String,
    /// The shard's device (copied from the spec for cheap access).
    pub device: DeviceSpec,
    /// Virtual time at which the shard finishes its current batch
    /// (meaningful while `busy`).
    pub free_at_ns: u64,
    /// Whether a batch is currently dispatched to the worker.
    pub busy: bool,
    /// Batches executed so far.
    pub batches: u64,
    /// Images executed so far.
    pub images: u64,
    /// Total virtual nanoseconds spent executing batches.
    pub busy_ns: u64,
    engine: Arc<Engine>,
    probe: Arc<RecordingProbe>,
    job_tx: mpsc::Sender<Vec<Request>>,
    done_rx: mpsc::Receiver<Result<Vec<Outcome>, SimError>>,
    worker: Option<JoinHandle<()>>,
}

impl Shard {
    /// Spin up shard `index` per `spec`: a fresh engine wired to a fresh
    /// recording probe, and a worker thread waiting for batches.
    pub fn new(index: usize, spec: &ShardSpec) -> Self {
        let probe = Arc::new(RecordingProbe::new());
        let handle = ProbeHandle::new(Arc::clone(&probe) as Arc<dyn isp_probe::Probe>);
        let engine = Arc::new(Engine::new(spec.device.clone()).with_probe(handle));
        let (job_tx, job_rx) = mpsc::channel::<Vec<Request>>();
        let (done_tx, done_rx) = mpsc::channel();
        let worker_engine = Arc::clone(&engine);
        let cap = spec.worker_cap.max(1);
        let worker = std::thread::spawn(move || {
            while let Ok(reqs) = job_rx.recv() {
                let result = rayon::with_worker_cap(cap, || worker_engine.run_batch(&reqs));
                if done_tx.send(result).is_err() {
                    break;
                }
            }
        });
        Shard {
            name: format!("shard{index}:{}", spec.device.name),
            device: spec.device.clone(),
            free_at_ns: 0,
            busy: false,
            batches: 0,
            images: 0,
            busy_ns: 0,
            engine,
            probe,
            job_tx,
            done_rx,
            worker: Some(worker),
        }
    }

    /// Hand a batch to the worker thread (non-blocking). Collect the
    /// outcomes later with [`Shard::recv`]; exactly one `recv` per
    /// `submit`.
    pub fn submit(&self, reqs: Vec<Request>) {
        self.job_tx.send(reqs).expect("shard worker is alive");
    }

    /// Block until the worker finishes the batch submitted last.
    pub fn recv(&self) -> Result<Vec<Outcome>, SimError> {
        self.done_rx.recv().expect("shard worker is alive")
    }

    /// Evaluate the Eq. 1-10 cost model for `req` on this shard's device
    /// (cached compile; no execution).
    pub fn predict(&self, req: &Request) -> Prediction {
        self.engine.predict(req)
    }

    /// The shard engine's cache counters (kernel/plan/decode/trace,
    /// including cross-launch trace hits).
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Everything this shard's probe recorded, as one named group of the
    /// multi-process Chrome trace.
    pub fn trace_group(&self) -> TraceGroup {
        self.probe.trace_group(self.name.clone())
    }

    /// The shard's probe metrics registry.
    pub fn metrics_json(&self) -> isp_json::Json {
        self.probe.metrics_json()
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop.
        let (tx, _rx) = mpsc::channel();
        drop(std::mem::replace(&mut self.job_tx, tx));
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("name", &self.name)
            .field("busy", &self.busy)
            .field("batches", &self.batches)
            .field("images", &self.images)
            .finish()
    }
}
