//! Batch formation: fold queued requests that would share a compiled plan
//! into one engine batch. Two requests are **compatible** when they agree
//! on everything that determines the compile/plan/launch path — kernel
//! fingerprints (via the app), border pattern, geometry (size and block),
//! ISP granularity, policy, execution mode, and strategy — so a batch
//! compiles once, plans once, and the second image onward replays the
//! first image's recorded traces from block 0.

use crate::queue::{AdmissionQueue, QueuedRequest};
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::{ExecMode, ExecStrategy};
use isp_exec::Request;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The batching compatibility key of a request: equal keys guarantee the
/// requests share one compiled plan and one trace-cache lineage. The app's
/// pipeline identity (stage names plus parameter values) stands in for the
/// kernel fingerprints: compilation is keyed by `(spec, pattern,
/// granularity)`, all of which this key covers, so equal keys compile to
/// byte-identical kernels.
pub fn compat_key(req: &Request) -> u64 {
    let mut h = DefaultHasher::new();
    req.app.name.hash(&mut h);
    for stage in &req.app.pipeline.stages {
        stage.spec.name.hash(&mut h);
        for p in &stage.user_params {
            p.to_bits().hash(&mut h);
        }
    }
    (req.pattern as u8).hash(&mut h);
    req.size.hash(&mut h);
    req.block.hash(&mut h);
    (req.granularity as u8).hash(&mut h);
    policy_tag(req.policy).hash(&mut h);
    matches!(req.mode, ExecMode::Exhaustive).hash(&mut h);
    matches!(req.strategy, ExecStrategy::Parallel).hash(&mut h);
    h.finish()
}

fn policy_tag(policy: Policy) -> (u8, u8) {
    match policy {
        Policy::Naive => (0, 0),
        Policy::AlwaysIsp(v) => (1, v as u8),
        Policy::Model(v) => (2, v as u8),
    }
}

/// Pull the next batch off the queue: the head-of-line request plus up to
/// `max_batch - 1` compatible requests found among the first `window`
/// waiting entries. FIFO order is preserved inside the batch and among
/// the requests left behind. Returns an empty vector when the queue is
/// empty.
pub fn form_batch(
    queue: &mut AdmissionQueue,
    max_batch: usize,
    window: usize,
) -> Vec<QueuedRequest> {
    let Some(head) = queue.waiting().next() else {
        return Vec::new();
    };
    let key = compat_key(&head.request);
    let mut positions = vec![0usize];
    for (pos, cand) in queue.waiting().enumerate().take(window).skip(1) {
        if positions.len() >= max_batch {
            break;
        }
        if compat_key(&cand.request) == key {
            positions.push(pos);
        }
    }
    queue.take(&positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_core::Variant;
    use isp_filters::by_name;
    use isp_image::BorderPattern;

    fn queued(id: u64, req: Request) -> QueuedRequest {
        QueuedRequest {
            id,
            client: None,
            request: req,
            arrival_ns: id,
        }
    }

    fn gauss(pattern: BorderPattern, size: usize) -> Request {
        Request::paper(
            by_name("gaussian").unwrap(),
            pattern,
            size,
            Policy::Model(Variant::IspBlock),
        )
    }

    #[test]
    fn compat_key_separates_plan_relevant_fields() {
        let base = gauss(BorderPattern::Clamp, 512);
        assert_eq!(compat_key(&base), compat_key(&base.clone()));
        assert_ne!(
            compat_key(&base),
            compat_key(&gauss(BorderPattern::Mirror, 512))
        );
        assert_ne!(
            compat_key(&base),
            compat_key(&gauss(BorderPattern::Clamp, 1024))
        );
        assert_ne!(
            compat_key(&base),
            compat_key(&gauss(BorderPattern::Clamp, 512).with_block((16, 16)))
        );
        let sobel = Request::paper(
            by_name("sobel").unwrap(),
            BorderPattern::Clamp,
            512,
            Policy::Model(Variant::IspBlock),
        );
        assert_ne!(compat_key(&base), compat_key(&sobel));
    }

    #[test]
    fn form_batch_groups_head_compatible_requests_in_order() {
        let mut q = AdmissionQueue::new(16);
        q.offer(queued(0, gauss(BorderPattern::Clamp, 512)));
        q.offer(queued(1, gauss(BorderPattern::Mirror, 512)));
        q.offer(queued(2, gauss(BorderPattern::Clamp, 512)));
        q.offer(queued(3, gauss(BorderPattern::Clamp, 512)));

        let batch = form_batch(&mut q, 8, 16);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 2, 3]);
        // The incompatible request keeps its place at the head.
        assert_eq!(q.waiting().map(|r| r.id).collect::<Vec<_>>(), [1]);
    }

    #[test]
    fn form_batch_respects_max_batch_and_window() {
        let mut q = AdmissionQueue::new(16);
        for i in 0..6 {
            q.offer(queued(i, gauss(BorderPattern::Clamp, 512)));
        }
        assert_eq!(form_batch(&mut q, 2, 16).len(), 2);
        assert_eq!(form_batch(&mut q, 8, 2).len(), 2);
        assert_eq!(q.depth(), 2);
    }
}
