//! The serving loop: a discrete-event simulation on a virtual u64
//! nanosecond clock. Arrivals (open-loop from a seeded inter-arrival
//! distribution, or closed-loop from a fixed client population with think
//! times) flow through admission -> batching -> model routing -> shard
//! execution. Service time is the *simulated* cycle count of each outcome
//! converted through the owning shard's device clock, so every latency,
//! throughput, and rejection number is bit-stable across runs and
//! machines — while the shards still execute concurrently in wall time:
//! each dispatch round submits batches to every idle shard's worker
//! thread and only then harvests, so heterogeneous shards overlap.

use crate::batch::form_batch;
use crate::dispatch::{route, Routing};
use crate::queue::{AdmissionQueue, QueuedRequest};
use crate::shard::{Shard, ShardSpec};
use crate::{ms_to_ns, ns_to_cycles, percentile};
use isp_exec::{CacheStats, Latency, Request};
use isp_probe::{Probe, ProbeHandle, RecordingProbe, TraceGroup};
use isp_sim::DeviceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Fleet shape and serving policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// One entry per shard.
    pub shards: Vec<ShardSpec>,
    /// How batches are routed to shards.
    pub routing: Routing,
    /// Maximum images per batch (1 disables batching).
    pub max_batch: usize,
    /// How many waiting requests the batcher scans for compatible work.
    pub batch_window: usize,
    /// Admission-queue depth cap (the backpressure knob).
    pub queue_cap: usize,
}

impl ServeConfig {
    /// Split the host's thread budget evenly over `n` shards.
    fn caps(n: usize) -> usize {
        (rayon::threads() / n.max(1)).max(1)
    }

    /// The heterogeneous fleet the paper's device table suggests: one
    /// Kepler and one Turing shard, Eq. 1-10 model routing, batching on.
    pub fn fleet() -> Self {
        let devices = [DeviceSpec::gtx680(), DeviceSpec::rtx2080()];
        let cap = Self::caps(devices.len());
        ServeConfig {
            shards: devices
                .into_iter()
                .map(|device| ShardSpec {
                    device,
                    worker_cap: cap,
                })
                .collect(),
            routing: Routing::Model,
            max_batch: 8,
            batch_window: 32,
            queue_cap: 64,
        }
    }

    /// The baseline the fleet must beat: a single Turing shard, FIFO
    /// dispatch, no batching.
    pub fn baseline() -> Self {
        ServeConfig {
            shards: vec![ShardSpec {
                device: DeviceSpec::rtx2080(),
                worker_cap: Self::caps(1),
            }],
            routing: Routing::Fixed,
            max_batch: 1,
            batch_window: 1,
            queue_cap: 64,
        }
    }

    /// Override the admission cap.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "queue cap must admit at least one request");
        self.queue_cap = cap;
        self
    }
}

/// Arrival process of a workload.
#[derive(Debug, Clone, Copy)]
pub enum Arrivals {
    /// Open loop: requests arrive at `rate_rps` regardless of completions
    /// (exponential inter-arrivals when `exponential`, else uniform in
    /// `(0, 2/rate)`). Overload shows up as deterministic rejections.
    Open { rate_rps: f64, exponential: bool },
    /// Closed loop: `clients` concurrent clients, each thinking for
    /// `think_ms` (virtual) between completion and its next request.
    Closed { clients: usize, think_ms: f64 },
}

/// A reproducible request stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Seed for every arrival-time and mix draw.
    pub seed: u64,
    /// Total requests to issue.
    pub requests: usize,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Request templates, drawn uniformly per arrival.
    pub mix: Vec<Request>,
}

/// One completed request in the report.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Dense request id in admission order.
    pub id: u64,
    /// Issuing closed-loop client, if any.
    pub client: Option<usize>,
    /// App name.
    pub app: String,
    /// Border pattern (display form).
    pub pattern: String,
    /// Image size.
    pub size: usize,
    /// Policy (debug form).
    pub policy: String,
    /// Shard index that executed the request.
    pub shard: usize,
    /// Size of the batch it rode in.
    pub batch_size: usize,
    /// Virtual arrival time.
    pub arrival_ns: u64,
    /// Virtual execution start (dispatch plus in-batch predecessors).
    pub start_ns: u64,
    /// Virtual completion time.
    pub done_ns: u64,
    /// The outcome's latency attribution, with `queue_cycles` filled in
    /// from the virtual queue wait on the executing shard's clock.
    pub latency: Latency,
}

impl RequestRecord {
    /// End-to-end virtual latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        (self.done_ns - self.arrival_ns) as f64 / 1.0e6
    }

    /// Virtual queue wait (admission to execution start) in milliseconds.
    pub fn queue_ms(&self) -> f64 {
        (self.start_ns - self.arrival_ns) as f64 / 1.0e6
    }

    /// Virtual execution time in milliseconds.
    pub fn exec_ms(&self) -> f64 {
        (self.done_ns - self.start_ns) as f64 / 1.0e6
    }
}

/// Per-shard totals for the report.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard display name (`shard<i>:<DEVICE>`).
    pub name: String,
    /// Device marketing name.
    pub device: String,
    /// Batches executed.
    pub batches: u64,
    /// Images executed.
    pub images: u64,
    /// Virtual nanoseconds spent executing.
    pub busy_ns: u64,
    /// The shard engine's cache counters (cumulative over the server's
    /// lifetime, including warmup runs).
    pub cache: CacheStats,
}

/// Everything one [`Server::run`] produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Completed requests in completion order.
    pub completed: Vec<RequestRecord>,
    /// Requests admitted by the queue.
    pub admitted: u64,
    /// Requests rejected at admission (open loop) or deferred to a retry
    /// (closed loop).
    pub rejected: u64,
    /// High-water mark of the admission queue.
    pub max_queue_depth: usize,
    /// Virtual time of the last completion.
    pub makespan_ns: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Per-shard totals.
    pub shards: Vec<ShardReport>,
}

impl ServeReport {
    /// Completed requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed.len() as f64 / (self.makespan_ns as f64 / 1.0e9)
    }

    /// End-to-end virtual latencies, milliseconds, completion order.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.completed.iter().map(|r| r.latency_ms()).collect()
    }

    /// Nearest-rank latency percentile in milliseconds.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        percentile(&self.latencies_ms(), p)
    }

    /// Mean images per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed.len() as f64 / self.batches as f64
    }
}

#[derive(Debug)]
enum EventKind {
    Arrival(QueuedRequest),
    ShardFree(usize),
}

#[derive(Debug)]
struct Event {
    t: u64,
    seq: u64,
    kind: EventKind,
}

impl Event {
    fn order(&self) -> (u64, u64) {
        (self.t, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.order() == other.order()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order().cmp(&other.order())
    }
}

struct ClientState {
    rng: StdRng,
    think_ns_mean: f64,
}

impl ClientState {
    fn think_ns(&mut self) -> u64 {
        // Uniform in (0, 2*mean): bounded, mean-preserving, seeded.
        let u: f64 = self.rng.gen();
        (u * 2.0 * self.think_ns_mean).round() as u64
    }
}

/// The serving system: shards plus the server's own probe (queue lanes).
pub struct Server {
    cfg: ServeConfig,
    shards: Vec<Shard>,
    probe: Arc<RecordingProbe>,
    handle: ProbeHandle,
}

impl Server {
    /// Build the fleet described by `cfg` (spawns one worker thread per
    /// shard).
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(!cfg.shards.is_empty(), "a server needs at least one shard");
        let shards: Vec<Shard> = cfg
            .shards
            .iter()
            .enumerate()
            .map(|(i, spec)| Shard::new(i, spec))
            .collect();
        let probe = Arc::new(RecordingProbe::new());
        let handle = ProbeHandle::new(Arc::clone(&probe) as Arc<dyn Probe>);
        Server {
            cfg,
            shards,
            probe,
            handle,
        }
    }

    /// The running shards (for cache stats and trace export).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The server's probe groups plus one group per shard — feed to
    /// [`isp_probe::chrome_trace_groups`] for the one-process-per-shard
    /// timeline.
    pub fn trace_groups(&self) -> Vec<TraceGroup> {
        let mut groups = vec![self.probe.trace_group("server")];
        groups.extend(self.shards.iter().map(|s| s.trace_group()));
        groups
    }

    /// The server probe's metrics registry (queue depth, batch size,
    /// admission counters), with the host-clock `span_us.*` histograms
    /// stripped so the export is deterministic: every remaining number is
    /// derived from the virtual clock. Wall-clock span timing lives in
    /// the Perfetto export ([`Server::trace_groups`]) instead.
    pub fn metrics_json(&self) -> isp_json::Json {
        use isp_json::Json;
        let metrics = self.probe.metrics_json();
        let Json::Obj(sections) = metrics else {
            return metrics;
        };
        Json::Obj(
            sections
                .into_iter()
                .map(|(section, value)| match value {
                    Json::Obj(entries) => (
                        section,
                        Json::Obj(
                            entries
                                .into_iter()
                                .filter(|(k, _)| !k.starts_with("span_us."))
                                .collect(),
                        ),
                    ),
                    other => (section, other),
                })
                .collect(),
        )
    }

    /// Drive one workload to completion and report. Deterministic: the
    /// same config and workload produce an identical report on every run
    /// and machine. Engine caches stay warm across calls (a second run of
    /// the same mix replays traces from block 0).
    pub fn run(&mut self, wl: &Workload) -> ServeReport {
        assert!(!wl.mix.is_empty(), "workload needs at least one template");
        for shard in &mut self.shards {
            shard.busy = false;
            shard.free_at_ns = 0;
            shard.batches = 0;
            shard.images = 0;
            shard.busy_ns = 0;
        }
        let mut queue = AdmissionQueue::new(self.cfg.queue_cap);
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Reverse<Event>>, t: u64, kind: EventKind| {
            heap.push(Reverse(Event { t, seq, kind }));
            seq += 1;
        };

        let mut issued = 0u64;
        let mut next_id = 0u64;
        let mut clients: Vec<ClientState> = Vec::new();
        match wl.arrivals {
            Arrivals::Open {
                rate_rps,
                exponential,
            } => {
                assert!(rate_rps > 0.0, "open-loop rate must be positive");
                let mut rng = StdRng::seed_from_u64(wl.seed);
                let mean_ns = 1.0e9 / rate_rps;
                let mut t = 0u64;
                for _ in 0..wl.requests {
                    let u: f64 = rng.gen();
                    let gap = if exponential {
                        -(1.0 - u).ln() * mean_ns
                    } else {
                        u * 2.0 * mean_ns
                    };
                    t += gap.round() as u64;
                    let request = wl.mix[rng.gen_range(0..wl.mix.len())].clone();
                    push(
                        &mut heap,
                        t,
                        EventKind::Arrival(QueuedRequest {
                            id: next_id,
                            client: None,
                            request,
                            arrival_ns: t,
                        }),
                    );
                    next_id += 1;
                    issued += 1;
                }
            }
            Arrivals::Closed {
                clients: n,
                think_ms,
            } => {
                assert!(n > 0, "closed loop needs at least one client");
                for c in 0..n {
                    let mut state = ClientState {
                        rng: StdRng::seed_from_u64(
                            wl.seed
                                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1)),
                        ),
                        think_ns_mean: think_ms * 1.0e6,
                    };
                    if issued < wl.requests as u64 {
                        let t = state.think_ns();
                        let request = wl.mix[state.rng.gen_range(0..wl.mix.len())].clone();
                        push(
                            &mut heap,
                            t,
                            EventKind::Arrival(QueuedRequest {
                                id: next_id,
                                client: Some(c),
                                request,
                                arrival_ns: t,
                            }),
                        );
                        next_id += 1;
                        issued += 1;
                    }
                    clients.push(state);
                }
            }
        }

        let mut completed: Vec<RequestRecord> = Vec::new();
        let mut batches = 0u64;
        let mut makespan_ns = 0u64;

        while let Some(Reverse(ev)) = heap.pop() {
            let now = ev.t;
            match ev.kind {
                EventKind::Arrival(qreq) => {
                    self.handle.instant(
                        "enqueue",
                        "serve",
                        Some(format!("req{} t={}ns", qreq.id, now)),
                    );
                    let client = qreq.client;
                    let request = qreq.request.clone();
                    if queue.offer(qreq) {
                        self.handle.count("serve.admitted", 1);
                        self.handle.instant("admit", "serve", None);
                        self.handle
                            .observe("serve.queue_depth", queue.depth() as f64);
                    } else {
                        self.handle.count("serve.rejected", 1);
                        self.handle.instant("reject", "serve", None);
                        if let Some(c) = client {
                            // Closed-loop backpressure: the client retries
                            // after another think period.
                            let retry = now + clients[c].think_ns();
                            push(
                                &mut heap,
                                retry,
                                EventKind::Arrival(QueuedRequest {
                                    id: next_id,
                                    client: Some(c),
                                    request,
                                    arrival_ns: retry,
                                }),
                            );
                            next_id += 1;
                        }
                    }
                }
                EventKind::ShardFree(i) => {
                    self.shards[i].busy = false;
                }
            }

            // Dispatch round: fill every idle shard, then harvest them all
            // before advancing the clock. The submits fan out to worker
            // threads, so heterogeneous shards execute concurrently in
            // wall time while virtual time stays deterministic.
            let mut submitted: Vec<(usize, Vec<QueuedRequest>)> = Vec::new();
            loop {
                let idle: Vec<usize> = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.busy)
                    .map(|(i, _)| i)
                    .collect();
                if idle.is_empty() || queue.is_empty() {
                    break;
                }
                // Balance the round: never let one batch swallow work that
                // could keep another idle shard busy.
                let fair = queue.depth().div_ceil(idle.len()).max(1);
                let t0 = self.handle.begin();
                let batch = form_batch(
                    &mut queue,
                    self.cfg.max_batch.min(fair),
                    self.cfg.batch_window,
                );
                self.handle.span("batch-form", "serve", t0, || {
                    Some(format!("{} images", batch.len()))
                });
                if batch.is_empty() {
                    break;
                }
                let t1 = self.handle.begin();
                let shard = route(
                    self.cfg.routing,
                    &self.shards,
                    &idle,
                    &batch[0].request,
                    batch.len(),
                );
                self.shards[shard].busy = true;
                self.shards[shard].submit(batch.iter().map(|q| q.request.clone()).collect());
                self.handle.span("dispatch", "serve", t1, || {
                    Some(format!(
                        "batch of {} -> {}",
                        batch.len(),
                        self.shards[shard].name
                    ))
                });
                self.handle.count("serve.batches", 1);
                self.handle.observe("serve.batch_size", batch.len() as f64);
                submitted.push((shard, batch));
            }

            for (i, batch) in submitted {
                let outcomes = self.shards[i].recv().expect("workload requests are valid");
                let ghz = self.shards[i].device.clock_ghz;
                let mut t_done = now;
                let n = batch.len();
                for (qreq, mut outcome) in batch.into_iter().zip(outcomes) {
                    let start_ns = t_done;
                    let service_ns =
                        ms_to_ns(self.shards[i].device.cycles_to_ms(outcome.total_cycles));
                    t_done += service_ns;
                    outcome.latency.queue_cycles = ns_to_cycles(start_ns - qreq.arrival_ns, ghz);
                    self.handle.instant(
                        "complete",
                        "serve",
                        Some(format!("req{} done t={}ns", qreq.id, t_done)),
                    );
                    self.handle.count("serve.completed", 1);
                    makespan_ns = makespan_ns.max(t_done);
                    if let Some(c) = qreq.client {
                        if issued < wl.requests as u64 {
                            let next_t = t_done + clients[c].think_ns();
                            let request = wl.mix[clients[c].rng.gen_range(0..wl.mix.len())].clone();
                            push(
                                &mut heap,
                                next_t,
                                EventKind::Arrival(QueuedRequest {
                                    id: next_id,
                                    client: Some(c),
                                    request,
                                    arrival_ns: next_t,
                                }),
                            );
                            next_id += 1;
                            issued += 1;
                        }
                    }
                    completed.push(RequestRecord {
                        id: qreq.id,
                        client: qreq.client,
                        app: qreq.request.app.name.to_string(),
                        pattern: qreq.request.pattern.to_string(),
                        size: qreq.request.size,
                        policy: format!("{:?}", qreq.request.policy),
                        shard: i,
                        batch_size: n,
                        arrival_ns: qreq.arrival_ns,
                        start_ns,
                        done_ns: t_done,
                        latency: outcome.latency,
                    });
                }
                self.shards[i].free_at_ns = t_done;
                self.shards[i].batches += 1;
                self.shards[i].images += n as u64;
                self.shards[i].busy_ns += t_done - now;
                batches += 1;
                push(&mut heap, t_done, EventKind::ShardFree(i));
            }
        }

        ServeReport {
            completed,
            admitted: queue.admitted(),
            rejected: queue.rejected(),
            max_queue_depth: queue.max_depth(),
            makespan_ns,
            batches,
            shards: self
                .shards
                .iter()
                .map(|s| ShardReport {
                    name: s.name.clone(),
                    device: s.device.name.to_string(),
                    batches: s.batches,
                    images: s.images,
                    busy_ns: s.busy_ns,
                    cache: s.cache_stats(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_core::Variant;
    use isp_dsl::pipeline::Policy;
    use isp_filters::by_name;
    use isp_image::BorderPattern;

    fn tiny_mix() -> Vec<Request> {
        vec![
            Request::paper(
                by_name("gaussian").unwrap(),
                BorderPattern::Clamp,
                64,
                Policy::Model(Variant::IspBlock),
            ),
            Request::paper(
                by_name("laplace").unwrap(),
                BorderPattern::Mirror,
                64,
                Policy::Model(Variant::IspBlock),
            ),
        ]
    }

    type Summary = (usize, u64, u64, u64, Vec<(u64, u64, u64)>);

    fn summarize(r: &ServeReport) -> Summary {
        (
            r.completed.len(),
            r.rejected,
            r.makespan_ns,
            r.batches,
            r.completed
                .iter()
                .map(|c| (c.id, c.start_ns, c.done_ns))
                .collect(),
        )
    }

    #[test]
    fn closed_loop_completes_and_is_deterministic() {
        let wl = Workload {
            seed: 7,
            requests: 12,
            arrivals: Arrivals::Closed {
                clients: 3,
                think_ms: 0.5,
            },
            mix: tiny_mix(),
        };
        let a = Server::new(ServeConfig::fleet()).run(&wl);
        let b = Server::new(ServeConfig::fleet()).run(&wl);
        assert_eq!(a.completed.len(), 12);
        assert_eq!(summarize(&a), summarize(&b));
        assert!(a.makespan_ns > 0);
        assert_eq!(a.shards.iter().map(|s| s.images).sum::<u64>(), 12);
    }

    #[test]
    fn open_loop_rejects_deterministically_under_burst() {
        // A rate far above service capacity with a tiny queue: admission
        // must bound the depth and the reject count must be exact.
        let wl = Workload {
            seed: 11,
            requests: 24,
            arrivals: Arrivals::Open {
                rate_rps: 1.0e6,
                exponential: true,
            },
            mix: tiny_mix(),
        };
        let cfg = || ServeConfig::baseline().with_queue_cap(4);
        let a = Server::new(cfg()).run(&wl);
        let b = Server::new(cfg()).run(&wl);
        assert_eq!(summarize(&a), summarize(&b));
        assert!(a.rejected > 0, "burst must overflow the tiny queue");
        assert!(a.max_queue_depth <= 4);
        assert_eq!(a.admitted + a.rejected, 24);
        assert_eq!(a.completed.len() as u64, a.admitted);
    }

    #[test]
    fn batching_folds_compatible_requests() {
        // Single-template closed-loop traffic with many clients: the
        // fleet config (max_batch 8) must form multi-image batches.
        let wl = Workload {
            seed: 3,
            requests: 16,
            arrivals: Arrivals::Closed {
                clients: 8,
                think_ms: 0.01,
            },
            // Exhaustive mode so replay traces are recorded and reused.
            mix: vec![tiny_mix().remove(0).exhaustive()],
        };
        let report = Server::new(ServeConfig::fleet()).run(&wl);
        assert_eq!(report.completed.len(), 16);
        assert!(
            report.mean_batch_size() > 1.0,
            "expected batching, got mean {}",
            report.mean_batch_size()
        );
        let xlaunch: u64 = report
            .shards
            .iter()
            .map(|s| s.cache.trace_cross_launch_hits)
            .sum();
        assert!(xlaunch > 0, "batch mates must replay cross-launch traces");
    }
}
