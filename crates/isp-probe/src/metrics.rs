//! The metrics registry: named counters and histograms with stable,
//! sorted key order.
//!
//! Keys are dot-separated paths (`engine.kernel_hits`, `span_us.compile`,
//! `sim.deopt.branch`). Both maps are `BTreeMap`s, so iteration — and
//! therefore JSON emission — is sorted and deterministic: two runs of the
//! same workload produce byte-identical summaries modulo the measured
//! values themselves.

use isp_json::Json;
use std::collections::BTreeMap;

/// Number of power-of-two magnitude buckets per histogram. Bucket `i`
/// holds observations `v` with `2^(i-1) <= v < 2^i` (bucket 0 holds
/// `v < 1`); the last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A fixed-footprint histogram: count/sum/min/max plus log2 magnitude
/// buckets. Good enough to see span-latency and block-cost shapes without
/// storing observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Log2 magnitude buckets (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for one observation.
    fn bucket_of(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        (value.log2() as usize + 1).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn to_json(&self) -> Json {
        // Trailing empty buckets are trimmed so small histograms stay small.
        let used = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        Json::obj()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("min", if self.count == 0 { 0.0 } else { self.min })
            .set("max", if self.count == 0 { 0.0 } else { self.max })
            .set("mean", self.mean())
            .set("log2_buckets", self.buckets[..used].to_vec())
    }
}

/// Counters + histograms, both keyed by sorted string paths.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `n` to the counter `key` (creating it at zero).
    pub fn count(&mut self, key: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(key) {
            *c += n;
        } else {
            self.counters.insert(key.to_string(), n);
        }
    }

    /// Record one observation into the histogram `key`.
    pub fn observe(&mut self, key: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(key.to_string(), h);
        }
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The histogram under `key`, if any observation was recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// The `k` largest counters under a key prefix, descending by value
    /// (ties broken by key for determinism). Used for top-N tables over
    /// families of counters such as the simulator's `sim.opseq2.` /
    /// `sim.opseq3.` opcode-sequence histograms.
    pub fn top_counters(&self, prefix: &str, k: usize) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .range(prefix.to_string()..)
            .take_while(|(key, _)| key.starts_with(prefix))
            .map(|(key, &n)| (key.clone(), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Merge another registry into this one (counters add, histograms
    /// combine bucket-wise).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &n) in &other.counters {
            self.count(k, n);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
            for (a, b) in mine.buckets.iter_mut().zip(h.buckets.iter()) {
                *a += b;
            }
        }
    }

    /// Emit `{"counters": {...}, "histograms": {...}}` with keys in sorted
    /// order (BTreeMap iteration order).
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, &v) in &self.counters {
            counters = counters.set(k, v);
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            histograms = histograms.set(k, h.to_json());
        }
        Json::obj()
            .set("counters", counters)
            .set("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("a"), 0);
        m.count("a", 2);
        m.count("a", 3);
        assert_eq!(m.counter("a"), 5);
    }

    #[test]
    fn histogram_buckets_are_log2_magnitude() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(0.9), 0);
        assert_eq!(Histogram::bucket_of(1.0), 1);
        assert_eq!(Histogram::bucket_of(2.0), 2);
        assert_eq!(Histogram::bucket_of(3.9), 2);
        assert_eq!(Histogram::bucket_of(4.0), 3);
        assert_eq!(Histogram::bucket_of(1e30), HISTOGRAM_BUCKETS - 1);

        let mut h = Histogram::default();
        for v in [0.5, 1.5, 1.5, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1000.0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
    }

    #[test]
    fn json_emission_is_key_sorted_and_stable() {
        let mut m = Metrics::new();
        m.count("z.last", 1);
        m.count("a.first", 1);
        m.observe("mid.hist", 7.0);
        let a = m.to_json().render();
        // Insertion in the opposite order yields the identical document.
        let mut m2 = Metrics::new();
        m2.observe("mid.hist", 7.0);
        m2.count("a.first", 1);
        m2.count("z.last", 1);
        assert_eq!(a, m2.to_json().render());
        let a_pos = a.find("a.first").unwrap();
        let z_pos = a.find("z.last").unwrap();
        assert!(a_pos < z_pos, "counter keys sorted");
    }

    #[test]
    fn merge_combines_counters_and_histograms() {
        let mut a = Metrics::new();
        a.count("c", 1);
        a.observe("h", 2.0);
        let mut b = Metrics::new();
        b.count("c", 2);
        b.observe("h", 8.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 10.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 8.0);
    }
}
