//! Chrome trace-event export (the JSON object format Perfetto and
//! `chrome://tracing` load).
//!
//! Layout of the emitted document:
//!
//! - **pid 1 — `host`**: wall-clock engine spans and instants, one Chrome
//!   thread per recording OS thread, timestamps in microseconds since the
//!   probe epoch. Spans are emitted as balanced `"B"`/`"E"` pairs; per
//!   thread they nest by construction (begin/end discipline), and the
//!   emitter closes parents with a stack so timestamps are monotonically
//!   non-decreasing within each lane.
//! - **pid 2+k — one process per launch timeline**: one Chrome thread per
//!   SM, one `"B"`/`"E"` slice per block *named by its region class* (which
//!   is what Perfetto colors by), and `"i"` instants where replay deopts
//!   retired, carrying the guard reason in `args`. Simulated cycles are
//!   rendered one-cycle-per-microsecond (the trace format has no unit
//!   field); `otherData.sim_clock` documents the convention.
//!
//! Every event lane — host threads and SM lanes alike — is emitted in
//! non-decreasing timestamp order with balanced span brackets, which
//! `tests/probe.rs` verifies on the rendered document.

use crate::timeline::SimTimeline;
use crate::{HostEvent, HostEventKind};
use isp_json::Json;

/// Host events live in this Chrome process.
pub const HOST_PID: u32 = 1;

/// The first launch timeline's Chrome process id; timeline `k` gets
/// `SIM_PID_BASE + k`.
pub const SIM_PID_BASE: u32 = 2;

fn meta(name: &str, pid: u32, tid: u32, value: String) -> Json {
    Json::obj()
        .set("name", name)
        .set("ph", "M")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", 0u64)
        .set("args", Json::obj().set("name", value))
}

fn begin(name: &str, cat: &str, pid: u32, tid: u32, ts: u64, args: Json) -> Json {
    Json::obj()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "B")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts)
        .set("args", args)
}

fn end(name: &str, cat: &str, pid: u32, tid: u32, ts: u64) -> Json {
    Json::obj()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "E")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts)
}

fn instant(name: &str, cat: &str, pid: u32, tid: u32, ts: u64, args: Json) -> Json {
    Json::obj()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "i")
        .set("s", "t")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts)
        .set("args", args)
}

/// Emit one host thread's events. `items` must be the thread's events;
/// they are sorted by `(start, end descending)` so parents precede the
/// children they enclose, and a stack of open span ends closes each span
/// at the right moment.
fn emit_host_thread_pid(out: &mut Vec<Json>, pid: u32, tid: u32, mut items: Vec<&HostEvent>) {
    items.sort_by(|a, b| {
        (a.start_us, std::cmp::Reverse(a.start_us + a.dur_us))
            .cmp(&(b.start_us, std::cmp::Reverse(b.start_us + b.dur_us)))
    });
    // Open spans: (end_us, name, cat), outermost first.
    fn close_until(
        out: &mut Vec<Json>,
        open: &mut Vec<(u64, String, &'static str)>,
        pid: u32,
        tid: u32,
        ts: u64,
    ) {
        while let Some((end_us, _, _)) = open.last() {
            if *end_us <= ts {
                let (end_us, name, cat) = open.pop().unwrap();
                out.push(end(&name, cat, pid, tid, end_us));
            } else {
                break;
            }
        }
    }
    let mut open: Vec<(u64, String, &'static str)> = Vec::new();
    for ev in items {
        close_until(out, &mut open, pid, tid, ev.start_us);
        let mut args = Json::obj();
        if let Some(d) = &ev.detail {
            args = args.set("detail", d.as_str());
        }
        match ev.kind {
            HostEventKind::Span => {
                out.push(begin(&ev.name, ev.cat, pid, tid, ev.start_us, args));
                open.push((ev.start_us + ev.dur_us, ev.name.clone(), ev.cat));
            }
            HostEventKind::Instant => {
                out.push(instant(&ev.name, ev.cat, pid, tid, ev.start_us, args));
            }
        }
    }
    // Close whatever is still open, innermost first (ends are
    // non-increasing down the stack, so timestamps stay monotonic).
    while let Some((end_us, name, cat)) = open.pop() {
        out.push(end(&name, cat, pid, tid, end_us));
    }
}

fn emit_timeline(
    out: &mut Vec<Json>,
    pid: u32,
    tl: &SimTimeline,
    class_name: &dyn Fn(u32) -> String,
) {
    out.push(meta("process_name", pid, 0, format!("sim: {}", tl.name)));
    let mut sms: Vec<u32> = tl.slices.iter().map(|s| s.sm).collect();
    sms.sort_unstable();
    sms.dedup();
    for &sm in &sms {
        out.push(meta("thread_name", pid, sm, format!("SM {sm}")));
    }

    // Per-SM event streams, merged by (timestamp, E < i < B) so a block's
    // end, its deopt marker, and the next block's begin land in that order
    // when they share a cycle.
    let ov = tl.launch_overhead;
    let mut lane: Vec<(u64, u8, Json)> = Vec::new();
    for &sm in &sms {
        lane.clear();
        for s in tl.slices.iter().filter(|s| s.sm == sm) {
            let name = class_name(s.class);
            let args = Json::obj()
                .set("block", format!("({}, {})", s.block.0, s.block.1))
                .set("class", s.class)
                .set("outcome", s.outcome)
                .set("cycles", s.end - s.start);
            lane.push((
                ov + s.start,
                2,
                begin(&name, "sim", pid, sm, ov + s.start, args),
            ));
            lane.push((ov + s.end, 0, end(&name, "sim", pid, sm, ov + s.end)));
        }
        for d in tl.deopts.iter().filter(|d| d.sm == sm) {
            let args = Json::obj()
                .set("reason", d.reason)
                .set("class", class_name(d.class));
            lane.push((
                ov + d.at,
                1,
                instant(
                    &format!("deopt: {}", d.reason),
                    "deopt",
                    pid,
                    sm,
                    ov + d.at,
                    args,
                ),
            ));
        }
        lane.sort_by_key(|&(ts, rank, _)| (ts, rank));
        out.extend(lane.drain(..).map(|(_, _, ev)| ev));
    }
}

fn emit_host_process(out: &mut Vec<Json>, pid: u32, name: &str, host: &[HostEvent]) {
    out.push(meta("process_name", pid, 0, name.to_string()));
    let mut tids: Vec<u32> = host.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for &tid in &tids {
        out.push(meta(
            "thread_name",
            pid,
            tid,
            format!("engine thread {tid}"),
        ));
        emit_host_thread_pid(
            out,
            pid,
            tid,
            host.iter().filter(|e| e.tid == tid).collect(),
        );
    }
}

fn trace_doc(events: Vec<Json>) -> Json {
    Json::obj()
        .set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms")
        .set(
            "otherData",
            Json::obj()
                .set("schema", "isp-trace-v1")
                .set("host_clock", "microseconds since probe construction")
                .set(
                    "sim_clock",
                    "simulated cycles rendered as microseconds (1 cycle = 1 us)",
                ),
        )
}

/// Build the full Chrome trace-event document from recorded host events and
/// launch timelines. `class_name` maps block-class ids to slice titles.
pub fn chrome_trace(
    host: &[HostEvent],
    timelines: &[SimTimeline],
    class_name: &dyn Fn(u32) -> String,
) -> Json {
    let mut events: Vec<Json> = Vec::new();
    emit_host_process(&mut events, HOST_PID, "host", host);
    for (k, tl) in timelines.iter().enumerate() {
        emit_timeline(&mut events, SIM_PID_BASE + k as u32, tl, class_name);
    }
    trace_doc(events)
}

/// One named process group of a multi-probe export: a label (the Chrome
/// process name) plus the host events and launch timelines one probe
/// recorded. The serving layer uses one group per engine shard, so the
/// exported trace shows each shard as its own process.
#[derive(Debug, Clone, Default)]
pub struct TraceGroup {
    /// Chrome process name for the group's host lane.
    pub name: String,
    /// Wall-clock spans/instants recorded by the group's probe.
    pub host: Vec<HostEvent>,
    /// Simulated launch timelines recorded by the group's probe.
    pub timelines: Vec<SimTimeline>,
}

/// [`chrome_trace`] over several probes at once: each [`TraceGroup`] gets
/// its own host process (named `group.name`) followed by one process per
/// launch timeline it recorded, with globally unique pids assigned in group
/// order.
pub fn chrome_trace_groups(groups: &[TraceGroup], class_name: &dyn Fn(u32) -> String) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut pid = HOST_PID;
    for group in groups {
        emit_host_process(&mut events, pid, &group.name, &group.host);
        pid += 1;
        for tl in &group.timelines {
            emit_timeline(&mut events, pid, tl, class_name);
            pid += 1;
        }
    }
    trace_doc(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{BlockSlice, DeoptInstant};

    fn span(name: &str, tid: u32, start_us: u64, dur_us: u64) -> HostEvent {
        HostEvent {
            kind: HostEventKind::Span,
            name: name.to_string(),
            cat: "test",
            detail: None,
            tid,
            start_us,
            dur_us,
        }
    }

    fn phases(doc: &Json, pid: u64, tid: u64) -> Vec<(String, u64)> {
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("no traceEvents");
        };
        events
            .iter()
            .filter(|e| {
                e.get("pid") == Some(&Json::U64(pid))
                    && e.get("tid") == Some(&Json::U64(tid))
                    && e.get("ph") != Some(&Json::Str("M".to_string()))
            })
            .map(|e| {
                let Some(Json::Str(ph)) = e.get("ph") else {
                    panic!("no ph");
                };
                let Some(Json::U64(ts)) = e.get("ts") else {
                    panic!("no ts");
                };
                (ph.clone(), *ts)
            })
            .collect()
    }

    #[test]
    fn nested_and_sequential_spans_emit_balanced_monotonic_brackets() {
        // Recording order is *end* order: the inner span lands in the
        // buffer before its parent. The emitter must still produce
        // B(parent) B(inner) E(inner) E(parent) B(next) E(next).
        let host = vec![
            span("inner", 0, 10, 5),
            span("parent", 0, 0, 30),
            span("next", 0, 40, 5),
        ];
        let doc = chrome_trace(&host, &[], &|c| format!("class{c}"));
        let seq = phases(&doc, HOST_PID as u64, 0);
        let phs: Vec<&str> = seq.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(phs, ["B", "B", "E", "E", "B", "E"]);
        let ts: Vec<u64> = seq.iter().map(|&(_, t)| t).collect();
        assert_eq!(ts, [0, 10, 15, 30, 40, 45]);
    }

    #[test]
    fn timeline_lanes_interleave_ends_deopts_and_begins() {
        let tl = SimTimeline {
            name: "k".to_string(),
            num_sms: 1,
            launch_overhead: 100,
            cycles: 120,
            slices: vec![
                BlockSlice {
                    sm: 0,
                    start: 0,
                    end: 10,
                    class: 0,
                    block: (0, 0),
                    outcome: "deopted",
                },
                BlockSlice {
                    sm: 0,
                    start: 10,
                    end: 20,
                    class: 1,
                    block: (1, 0),
                    outcome: "replayed",
                },
            ],
            deopts: vec![DeoptInstant {
                sm: 0,
                at: 10,
                class: 0,
                reason: "branch",
            }],
        };
        let doc = chrome_trace(&[], &[tl], &|c| format!("class{c}"));
        let seq = phases(&doc, SIM_PID_BASE as u64, 0);
        let phs: Vec<&str> = seq.iter().map(|(p, _)| p.as_str()).collect();
        // Slice end, deopt marker, next slice begin — all at cycle 10
        // (offset by the 100-cycle launch overhead).
        assert_eq!(phs, ["B", "E", "i", "B", "E"]);
        let ts: Vec<u64> = seq.iter().map(|&(_, t)| t).collect();
        assert_eq!(ts, [100, 110, 110, 110, 120]);
        // Lane is monotonic.
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
