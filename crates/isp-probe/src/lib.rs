//! Structured tracing and metrics for the simulator stack.
//!
//! The execution layers (`isp-exec`'s engine, `isp-sim`'s launch pipeline)
//! report what they are doing to a [`Probe`] sink: host-side wall-clock
//! **spans** (compile, plan, decode, trace-record, launch), **instant**
//! events (cache hits/misses, replay deopts), **counters** and
//! **histograms**, and per-launch simulated-time [`SimTimeline`]s
//! reconstructed from the scheduler's dispatch model (one lane per SM, one
//! slice per block, keyed by region class).
//!
//! Instrumentation must cost nothing when nobody is listening: the golden
//! instruction counts and the `sim_speed` medians are pinned with the probe
//! disabled. Two mechanisms guarantee that:
//!
//! - [`ProbeHandle`] caches the sink's `enabled()` answer at construction,
//!   so every hot-path check is a plain bool field read — no virtual call,
//!   no atomic;
//! - the per-SM timeline is *derived after the fact* from the scheduler's
//!   dispatch decisions rather than sampled during execution, so the
//!   per-block simulation loop carries no timestamps at all.
//!
//! [`RecordingProbe`] is the in-memory sink behind the `timeline` binary:
//! it buffers everything and exports a Chrome trace-event document (loadable
//! in Perfetto / `chrome://tracing`, see [`chrome`]) plus a stable-ordered
//! metrics summary (see [`metrics`]).

pub mod chrome;
pub mod metrics;
pub mod timeline;

pub use chrome::{chrome_trace_groups, TraceGroup};
pub use metrics::{Histogram, Metrics};
pub use timeline::{BlockSlice, DeoptInstant, SimTimeline};

use isp_json::Json;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// Category tag for a host-side event (becomes the Chrome trace `cat`
/// field). Static so hot call sites never format strings.
pub type Category = &'static str;

/// A sink for execution events. All methods default to no-ops so a sink
/// only overrides what it cares about; [`NoProbe`] overrides nothing.
///
/// Span timing protocol: call [`Probe::begin`] before the work (it returns
/// `None` when disabled, making the span free) and hand the returned
/// `Instant` back to [`Probe::end_span`] after. [`ProbeHandle::span`] wraps
/// that pairing so call sites stay one-liners.
pub trait Probe: Send + Sync {
    /// Whether this sink wants events at all. Consulted once per
    /// [`ProbeHandle`] construction, then cached.
    fn enabled(&self) -> bool {
        false
    }

    /// Start a wall-clock span. `None` means "don't bother timing".
    fn begin(&self) -> Option<Instant> {
        None
    }

    /// Finish a wall-clock span started by [`Probe::begin`].
    fn end_span(&self, _name: &str, _cat: Category, _detail: Option<String>, _started: Instant) {}

    /// A point-in-time event (cache hit, deopt, ...).
    fn instant(&self, _name: &str, _cat: Category, _detail: Option<String>) {}

    /// Add `n` to the counter `key`.
    fn count(&self, _key: &str, _n: u64) {}

    /// Record one observation of `value` into the histogram `key`.
    fn observe(&self, _key: &str, _value: f64) {}

    /// A finished launch's simulated-time timeline.
    fn timeline(&self, _timeline: SimTimeline) {}
}

/// The default sink: reports itself disabled and drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// A cheap, cloneable handle to a [`Probe`] that the execution layers embed.
///
/// The `enabled` flag is captured from the sink when the handle is built, so
/// `is_enabled()` — the only thing hot paths ever ask — is a field read that
/// the optimiser can hoist and branch-predict. All event methods check it
/// first and forward to the sink only when it is set.
#[derive(Clone)]
pub struct ProbeHandle {
    inner: Arc<dyn Probe>,
    enabled: bool,
}

impl ProbeHandle {
    /// Wrap a sink, caching its `enabled()` answer.
    pub fn new(probe: Arc<dyn Probe>) -> Self {
        let enabled = probe.enabled();
        ProbeHandle {
            inner: probe,
            enabled,
        }
    }

    /// The disabled handle (a [`NoProbe`]).
    pub fn none() -> Self {
        ProbeHandle {
            inner: Arc::new(NoProbe),
            enabled: false,
        }
    }

    /// Whether events will be recorded. A plain field read.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start timing a span; `None` when disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            self.inner.begin()
        } else {
            None
        }
    }

    /// Finish a span started by [`ProbeHandle::begin`]. `detail` is only
    /// evaluated when the span was actually started, so call sites may
    /// format freely inside the closure.
    #[inline]
    pub fn span(
        &self,
        name: &str,
        cat: Category,
        started: Option<Instant>,
        detail: impl FnOnce() -> Option<String>,
    ) {
        if let Some(started) = started {
            self.inner.end_span(name, cat, detail(), started);
        }
    }

    /// Record an instant event (no-op when disabled).
    #[inline]
    pub fn instant(&self, name: &str, cat: Category, detail: Option<String>) {
        if self.enabled {
            self.inner.instant(name, cat, detail);
        }
    }

    /// Add `n` to a counter (no-op when disabled).
    #[inline]
    pub fn count(&self, key: &str, n: u64) {
        if self.enabled {
            self.inner.count(key, n);
        }
    }

    /// Record a histogram observation (no-op when disabled).
    #[inline]
    pub fn observe(&self, key: &str, value: f64) {
        if self.enabled {
            self.inner.observe(key, value);
        }
    }

    /// Deliver a launch timeline (no-op when disabled).
    #[inline]
    pub fn timeline(&self, timeline: SimTimeline) {
        if self.enabled {
            self.inner.timeline(timeline);
        }
    }
}

impl Default for ProbeHandle {
    fn default() -> Self {
        ProbeHandle::none()
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeHandle")
            .field("enabled", &self.enabled)
            .finish()
    }
}

/// How a recorded host-side event occupies time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEventKind {
    /// A duration span (`ph: "B"`/`"E"` pair in the Chrome trace).
    Span,
    /// A point event (`ph: "i"`).
    Instant,
}

/// One host-side event captured by [`RecordingProbe`]. Timestamps are
/// microseconds since the probe's construction, per OS thread (`tid` is a
/// small dense id interned from the recording thread's `ThreadId`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostEvent {
    /// Span or instant.
    pub kind: HostEventKind,
    /// Event name (Chrome trace slice title).
    pub name: String,
    /// Category tag.
    pub cat: Category,
    /// Free-form detail rendered into the trace `args`.
    pub detail: Option<String>,
    /// Dense per-probe thread id of the recording thread.
    pub tid: u32,
    /// Start microseconds since the probe epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
}

#[derive(Default)]
struct Recorded {
    host: Vec<HostEvent>,
    timelines: Vec<SimTimeline>,
    metrics: Metrics,
    threads: HashMap<ThreadId, u32>,
}

impl Recorded {
    fn tid(&mut self) -> u32 {
        let next = self.threads.len() as u32;
        *self
            .threads
            .entry(std::thread::current().id())
            .or_insert(next)
    }
}

/// An in-memory [`Probe`] that records everything it is sent and exports it
/// as a Chrome trace-event document plus a metrics summary.
///
/// Spans additionally feed `span_us.<name>` histograms and
/// `span.<name>.count` counters, and each delivered timeline is folded into
/// `sim.*` counters (blocks by outcome, deopts by reason) — so the metrics
/// registry aggregates across every launch of a session without the
/// simulator doing any bookkeeping of its own.
pub struct RecordingProbe {
    epoch: Instant,
    state: Mutex<Recorded>,
}

impl RecordingProbe {
    /// A fresh, empty recording sink. Its epoch (host timestamp zero) is
    /// the moment of construction.
    pub fn new() -> Self {
        RecordingProbe {
            epoch: Instant::now(),
            state: Mutex::new(Recorded::default()),
        }
    }

    /// Convenience: a new sink plus a [`ProbeHandle`] wired to it.
    pub fn new_handle() -> (Arc<RecordingProbe>, ProbeHandle) {
        let probe = Arc::new(RecordingProbe::new());
        let handle = ProbeHandle::new(Arc::clone(&probe) as Arc<dyn Probe>);
        (probe, handle)
    }

    fn micros_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Every host-side event recorded so far.
    pub fn host_events(&self) -> Vec<HostEvent> {
        self.state.lock().unwrap().host.clone()
    }

    /// Every launch timeline recorded so far, in delivery order.
    pub fn timelines(&self) -> Vec<SimTimeline> {
        self.state.lock().unwrap().timelines.clone()
    }

    /// A snapshot of the aggregated metrics registry.
    pub fn metrics(&self) -> Metrics {
        self.state.lock().unwrap().metrics.clone()
    }

    /// Render everything recorded so far as a Chrome trace-event document.
    /// `class_name` maps a block-class id to the slice title used for the
    /// simulated-time lanes (for ISP kernels: the region name, which is what
    /// Perfetto colors slices by).
    pub fn chrome_trace(&self, class_name: &dyn Fn(u32) -> String) -> Json {
        let state = self.state.lock().unwrap();
        chrome::chrome_trace(&state.host, &state.timelines, class_name)
    }

    /// Render the metrics registry as JSON (keys in stable sorted order).
    pub fn metrics_json(&self) -> Json {
        self.state.lock().unwrap().metrics.to_json()
    }

    /// Snapshot everything recorded so far as one named group of a
    /// multi-probe export (see [`chrome_trace_groups`]). Host timestamps
    /// stay relative to this probe's own epoch.
    pub fn trace_group(&self, name: impl Into<String>) -> TraceGroup {
        let state = self.state.lock().unwrap();
        TraceGroup {
            name: name.into(),
            host: state.host.clone(),
            timelines: state.timelines.clone(),
        }
    }
}

impl Default for RecordingProbe {
    fn default() -> Self {
        RecordingProbe::new()
    }
}

impl Probe for RecordingProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn begin(&self) -> Option<Instant> {
        Some(Instant::now())
    }

    fn end_span(&self, name: &str, cat: Category, detail: Option<String>, started: Instant) {
        let start_us = self.micros_since_epoch(started);
        let end_us = self.micros_since_epoch(Instant::now());
        let dur_us = end_us.saturating_sub(start_us);
        let mut state = self.state.lock().unwrap();
        let tid = state.tid();
        state.host.push(HostEvent {
            kind: HostEventKind::Span,
            name: name.to_string(),
            cat,
            detail,
            tid,
            start_us,
            dur_us,
        });
        state
            .metrics
            .observe(&format!("span_us.{name}"), dur_us as f64);
        state.metrics.count(&format!("span.{name}.count"), 1);
    }

    fn instant(&self, name: &str, cat: Category, detail: Option<String>) {
        let ts = self.micros_since_epoch(Instant::now());
        let mut state = self.state.lock().unwrap();
        let tid = state.tid();
        state.host.push(HostEvent {
            kind: HostEventKind::Instant,
            name: name.to_string(),
            cat,
            detail,
            tid,
            start_us: ts,
            dur_us: 0,
        });
    }

    fn count(&self, key: &str, n: u64) {
        self.state.lock().unwrap().metrics.count(key, n);
    }

    fn observe(&self, key: &str, value: f64) {
        self.state.lock().unwrap().metrics.observe(key, value);
    }

    fn timeline(&self, timeline: SimTimeline) {
        let mut state = self.state.lock().unwrap();
        state.metrics.count("sim.launches", 1);
        state
            .metrics
            .observe("sim.launch_cycles", timeline.cycles as f64);
        for s in &timeline.slices {
            state.metrics.count(&format!("sim.blocks.{}", s.outcome), 1);
            state
                .metrics
                .observe("sim.block_cycles", (s.end - s.start) as f64);
        }
        for d in &timeline.deopts {
            state.metrics.count(&format!("sim.deopt.{}", d.reason), 1);
        }
        state.timelines.push(timeline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_reports_disabled_and_skips_spans() {
        let h = ProbeHandle::none();
        assert!(!h.is_enabled());
        assert!(h.begin().is_none());
        // The detail closure must never run when the span was not started.
        h.span("x", "test", None, || {
            panic!("detail evaluated while disabled")
        });
        h.count("k", 1);
        h.observe("k", 1.0);
    }

    #[test]
    fn recording_probe_captures_spans_and_metrics() {
        let (rec, h) = RecordingProbe::new_handle();
        assert!(h.is_enabled());
        let t0 = h.begin();
        assert!(t0.is_some());
        h.span("compile", "engine", t0, || Some("gaussian".to_string()));
        h.instant("kernel-cache-miss", "engine", None);
        h.count("engine.kernel_misses", 1);
        h.count("engine.kernel_misses", 2);

        let events = rec.host_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, HostEventKind::Span);
        assert_eq!(events[0].name, "compile");
        assert_eq!(events[0].detail.as_deref(), Some("gaussian"));
        assert_eq!(events[1].kind, HostEventKind::Instant);

        let m = rec.metrics();
        assert_eq!(m.counter("engine.kernel_misses"), 3);
        assert_eq!(m.counter("span.compile.count"), 1);
    }

    #[test]
    fn timeline_delivery_feeds_aggregate_counters() {
        let (rec, h) = RecordingProbe::new_handle();
        h.timeline(SimTimeline {
            name: "k".to_string(),
            num_sms: 2,
            launch_overhead: 10,
            cycles: 110,
            slices: vec![
                BlockSlice {
                    sm: 0,
                    start: 0,
                    end: 100,
                    class: 4,
                    block: (0, 0),
                    outcome: "recorded",
                },
                BlockSlice {
                    sm: 1,
                    start: 0,
                    end: 60,
                    class: 4,
                    block: (1, 0),
                    outcome: "deopted",
                },
            ],
            deopts: vec![DeoptInstant {
                sm: 1,
                at: 60,
                class: 4,
                reason: "branch",
            }],
        });
        let m = rec.metrics();
        assert_eq!(m.counter("sim.launches"), 1);
        assert_eq!(m.counter("sim.blocks.recorded"), 1);
        assert_eq!(m.counter("sim.blocks.deopted"), 1);
        assert_eq!(m.counter("sim.deopt.branch"), 1);
        assert_eq!(rec.timelines().len(), 1);
    }
}
