//! Simulated-time launch timelines.
//!
//! A [`SimTimeline`] is the scheduler's dispatch model made visible: the
//! greedy earliest-finishing-SM scheduler assigns every block a `(sm,
//! start, end)` interval in simulated cycles, with per-SM blocks running
//! back-to-back from cycle 0 (the i-cache switch penalty is folded into
//! each block's effective cycles). The launch pipeline captures those
//! decisions — it does **not** sample clocks during execution — so the
//! timeline is exact and free when disabled.
//!
//! Invariants (pinned by `tests/probe.rs`):
//! - slices on one SM tile `[0, busy_sm]` with no gaps or overlaps;
//! - `cycles == launch_overhead + max(slice.end)` over all slices
//!   (or `launch_overhead` alone for an empty grid);
//! - every [`DeoptInstant`] sits at the end of its block's slice.

/// One block's residency on one SM, in simulated cycles relative to the
/// end of the fixed launch overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSlice {
    /// SM the scheduler placed the block on.
    pub sm: u32,
    /// Cycle the block started issuing (occupancy-derated, i-cache
    /// penalty included).
    pub start: u64,
    /// Cycle the block retired.
    pub end: u64,
    /// Block class id (for ISP kernels: the region index, 0..9).
    pub class: u32,
    /// Block coordinates `(bx, by)`.
    pub block: (u32, u32),
    /// How the block executed: `"run"` (plain decoded/reference),
    /// `"recorded"`, `"replayed"`, `"deopted"` (replay engine), or
    /// `"modeled"` (region-sampled extrapolation).
    pub outcome: &'static str,
}

impl BlockSlice {
    /// Simulated cycles the block occupied its SM.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// A replay deopt, pinned to the moment its block retired on its SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeoptInstant {
    /// SM the deopted block ran on.
    pub sm: u32,
    /// Cycle of the deopt marker (the block's slice end).
    pub at: u64,
    /// Block class id.
    pub class: u32,
    /// Which guard missed (a [`DeoptReason`] name from `isp-sim`).
    pub reason: &'static str,
}

/// The full simulated-time picture of one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTimeline {
    /// Kernel name (becomes the Chrome trace process name).
    pub name: String,
    /// SMs on the simulated device (lanes, even if some stayed idle).
    pub num_sms: u32,
    /// Fixed launch overhead in cycles; slices start after it.
    pub launch_overhead: u64,
    /// Total launch cycles (`launch_overhead + max slice end`).
    pub cycles: u64,
    /// One slice per executed block, in dispatch order.
    pub slices: Vec<BlockSlice>,
    /// Replay deopts, in dispatch order.
    pub deopts: Vec<DeoptInstant>,
}
