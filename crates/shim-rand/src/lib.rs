//! A minimal, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, and `Rng::gen_range` over half-open ranges.
//!
//! The generator is SplitMix64 — statistically solid for synthetic test
//! imagery, fully deterministic for a given seed, and obviously not
//! cryptographic. The exact stream differs from upstream `rand`'s `StdRng`;
//! nothing in the workspace depends on the upstream stream, only on
//! determinism per seed.

use std::ops::Range;

/// Core entropy source: anything that can produce uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its natural uniform distribution
    /// (`[0, 1)` for floats, the full domain for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from a half-open range. Panics if `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical uniform distribution (the `rand::distributions::
/// Standard` analogue).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draw one value from `range`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let unit: $t = Standard::from_rng(rng);
                range.start + unit * (range.end - range.start)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
