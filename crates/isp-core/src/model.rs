//! The analytic performance model (paper §IV, Eqs. 3–10).
//!
//! Two flavours are provided:
//!
//! - [`ClosedFormModel`] — the paper's closed-form Eqs. (3)–(9), driven by
//!   three abstract quantities (`n_check`, `n_kernel`, `n_switch`). Useful
//!   for exposition, the Figure 3 analysis, and sanity tests.
//! - [`IrStatsModel`] — the production path: per-region static instruction
//!   counts taken from the *actual compiled IR* (the paper measures at PTX
//!   level for the same reason: "to obtain a more accurate estimation than
//!   at CUDA source code").
//!
//! Both produce `R_reduced = N_naive / N_ISP` (Eq. 9); combining with the
//! occupancy ratio gives the prediction `G = R_reduced * O_ISP / O_naive`
//! (Eq. 10): `G > 1` predicts ISP wins, otherwise the naive variant should
//! be used.

use crate::bounds::{Geometry, IndexBounds};
use crate::region::Region;

/// The paper's closed-form instruction model.
///
/// Note on Eq. (5): we read the switch term as once-per-thread (it executes
/// once per thread, before the window loop), i.e.
/// `n_inst(p) = (n_switch(p) + n_region_per_access(p) * m * n) * threads(p)`,
/// which is the only dimensionally consistent reading of the equation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedFormModel {
    /// Instructions to check one border (e.g. the left border) per access.
    pub n_check: f64,
    /// Instructions of the kernel computation per accessed pixel.
    pub n_kernel: f64,
    /// Instructions executed to switch to each region (Listing 3's cascade:
    /// later regions cost more comparisons).
    pub n_switch: [f64; 9],
}

impl ClosedFormModel {
    /// A generic default: 3 instructions per border check (compare + two
    /// index ops), switch cascade costs from Listing 3's comparison order.
    pub fn generic(n_kernel: f64) -> Self {
        ClosedFormModel {
            n_check: 3.0,
            n_kernel,
            // Order: TL, T, TR, L, Body, R, BL, B, BR — matching Listing 3,
            // TL tests 1 compound condition, Body falls through all 8.
            n_switch: [2.0, 5.0, 3.0, 6.0, 10.0, 9.0, 7.0, 8.0, 10.0],
        }
    }

    /// Eq. (3): total instructions of the naive implementation (all four
    /// border checks for every accessed pixel of every window position).
    pub fn n_naive(&self, g: &Geometry) -> f64 {
        (4.0 * self.n_check + self.n_kernel) * (g.m * g.n * g.sx * g.sy) as f64
    }

    /// Per-access instruction count of one region (Eq. 6).
    pub fn n_region_per_access(&self, region: Region) -> f64 {
        region.sides_checked() as f64 * self.n_check + self.n_kernel
    }

    /// Eq. (5): instructions executed by all threads of one region.
    pub fn n_inst(&self, region: Region, g: &Geometry, bounds: &IndexBounds) -> f64 {
        let blocks = bounds.block_counts().get(region) as f64;
        let threads = blocks * (g.tx * g.ty) as f64;
        let window = (g.m * g.n) as f64;
        (self.n_switch[region.index()] + self.n_region_per_access(region) * window) * threads
    }

    /// Eq. (4): total ISP instructions, summed over the nine regions.
    pub fn n_isp(&self, g: &Geometry, bounds: &IndexBounds) -> f64 {
        Region::ALL.iter().map(|&r| self.n_inst(r, g, bounds)).sum()
    }

    /// Eq. (9): `R_reduced = N_naive / N_ISP`.
    pub fn r_reduced(&self, g: &Geometry) -> f64 {
        let bounds = IndexBounds::new(g);
        if !bounds.is_valid() {
            return 1.0; // degenerate partitioning: fall back, no reduction
        }
        self.n_naive(g) / self.n_isp(g, &bounds)
    }
}

/// Per-region static instruction counts taken from compiled IR.
#[derive(Debug, Clone, PartialEq)]
pub struct IrStatsModel {
    /// Static instructions on the naive kernel's per-thread path.
    pub naive_per_thread: f64,
    /// Static instructions on each region's per-thread path in the fat
    /// kernel (region switch included), indexed by [`Region::index`].
    pub region_per_thread: [f64; 9],
}

impl IrStatsModel {
    /// `R_reduced` with exact per-region weights: per-thread instruction
    /// counts weighted by the Eq. (8) block populations (thread counts per
    /// block cancel).
    pub fn r_reduced(&self, bounds: &IndexBounds) -> f64 {
        if !bounds.is_valid() {
            return 1.0;
        }
        let counts = bounds.block_counts();
        let total = counts.total() as f64;
        let n_isp: f64 = Region::ALL
            .iter()
            .map(|&r| self.region_per_thread[r.index()] * counts.get(r) as f64)
            .sum();
        if n_isp == 0.0 {
            return 1.0;
        }
        (self.naive_per_thread * total) / n_isp
    }
}

/// Inputs to the final prediction (Eq. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionInputs {
    /// Instruction reduction ratio `R_reduced` (Eq. 9).
    pub r_reduced: f64,
    /// Theoretical occupancy of the naive kernel.
    pub occ_naive: f64,
    /// Theoretical occupancy of the ISP fat kernel.
    pub occ_isp: f64,
}

impl PredictionInputs {
    /// Eq. (10): `G = R_reduced * O_ISP / O_naive`.
    pub fn gain(&self) -> f64 {
        assert!(
            self.occ_naive > 0.0 && self.occ_isp > 0.0,
            "occupancies must be positive"
        );
        self.r_reduced * self.occ_isp / self.occ_naive
    }

    /// The model's verdict: apply ISP iff the predicted gain exceeds 1.
    pub fn isp_wins(&self) -> bool {
        self.gain() > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geometry(sx: usize, m: usize, tx: u32, ty: u32) -> Geometry {
        Geometry {
            sx,
            sy: sx,
            m,
            n: m,
            tx,
            ty,
        }
    }

    #[test]
    fn cheap_kernels_benefit_more() {
        // §IV-A.3 observation 1: small n_kernel relative to n_check -> more
        // reduction.
        let g = geometry(2048, 5, 32, 4);
        let cheap = ClosedFormModel::generic(2.0).r_reduced(&g);
        let pricey = ClosedFormModel::generic(40.0).r_reduced(&g);
        assert!(cheap > pricey, "cheap {cheap} vs expensive {pricey}");
        assert!(cheap > 2.0);
        // The expensive kernel caps out near its asymptote (12+40)/40 = 1.3.
        assert!(pricey < 1.35);
    }

    #[test]
    fn larger_images_benefit_more() {
        // §IV-A.3 observation 2 / Figure 3.
        let model = ClosedFormModel::generic(5.0);
        let mut prev = 0.0;
        for sx in [256usize, 512, 1024, 2048, 4096] {
            let r = model.r_reduced(&geometry(sx, 5, 128, 1));
            assert!(r > prev, "R must grow with image size: {r} at {sx}");
            prev = r;
        }
    }

    #[test]
    fn body_dominates_large_images() {
        // At 4096^2 nearly all instructions are Body instructions, so
        // R approaches the no-check/with-check ratio.
        let model = ClosedFormModel::generic(5.0);
        let g = geometry(4096, 5, 32, 4);
        let r = model.r_reduced(&g);
        let asymptote = (4.0 * model.n_check + model.n_kernel) / model.n_kernel;
        assert!(r > 0.85 * asymptote, "r={r} asymptote={asymptote}");
        assert!(r < asymptote);
    }

    #[test]
    fn degenerate_bounds_yield_unity() {
        let model = ClosedFormModel::generic(5.0);
        // 32-wide image, 13x13 window, 32-wide blocks: degenerate.
        let r = model.r_reduced(&geometry(32, 13, 32, 4));
        assert_eq!(r, 1.0);
    }

    #[test]
    fn ir_stats_model_weighted_by_populations() {
        let g = geometry(512, 5, 32, 4);
        let bounds = IndexBounds::new(&g);
        // Naive path: 100 instrs; Body: 60; edges: 85; corners: 95.
        let mut region = [95.0; 9];
        region[Region::T.index()] = 85.0;
        region[Region::B.index()] = 85.0;
        region[Region::L.index()] = 85.0;
        region[Region::R.index()] = 85.0;
        region[Region::Body.index()] = 60.0;
        let m = IrStatsModel {
            naive_per_thread: 100.0,
            region_per_thread: region,
        };
        let r = m.r_reduced(&bounds);
        assert!(r > 1.4 && r < 100.0 / 60.0, "r={r}");
        // All regions as expensive as naive -> no reduction.
        let flat = IrStatsModel {
            naive_per_thread: 100.0,
            region_per_thread: [100.0; 9],
        };
        assert!((flat.r_reduced(&bounds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gain_combines_reduction_and_occupancy() {
        let p = PredictionInputs {
            r_reduced: 1.5,
            occ_naive: 1.0,
            occ_isp: 0.75,
        };
        assert!((p.gain() - 1.125).abs() < 1e-12);
        assert!(p.isp_wins());
        // Occupancy loss can flip the verdict (the Table III story).
        let p = PredictionInputs {
            r_reduced: 1.1,
            occ_naive: 1.0,
            occ_isp: 0.625,
        };
        assert!(!p.isp_wins());
        // No occupancy change (Turing): R alone decides.
        let p = PredictionInputs {
            r_reduced: 1.02,
            occ_naive: 1.0,
            occ_isp: 1.0,
        };
        assert!(p.isp_wins());
    }

    #[test]
    fn eq5_switch_charged_once_per_thread() {
        let model = ClosedFormModel::generic(5.0);
        let g = geometry(512, 3, 32, 4);
        let bounds = IndexBounds::new(&g);
        // Body blocks: switch 10 + 5 instr/access * 9 accesses = 55/thread.
        let body_blocks = bounds.block_counts().get(Region::Body) as f64;
        let expect = (10.0 + 5.0 * 9.0) * body_blocks * 128.0;
        assert!((model.n_inst(Region::Body, &g, &bounds) - expect).abs() < 1e-6);
    }

    proptest! {
        /// R_reduced is bounded by the per-access naive/body ratio and
        /// never below ~the switch-overhead floor.
        #[test]
        fn r_reduced_bounded(
            sx_pow in 8u32..12,
            m_half in 1usize..7,
            n_kernel in 1.0f64..50.0,
        ) {
            let g = geometry(1usize << sx_pow, 2 * m_half + 1, 32, 4);
            let model = ClosedFormModel::generic(n_kernel);
            let r = model.r_reduced(&g);
            let ceiling = (4.0 * model.n_check + n_kernel) / n_kernel;
            prop_assert!(r <= ceiling + 1e-9, "r={r} > ceiling={ceiling}");
            prop_assert!(r > 0.5, "r={r} unreasonably small");
        }

        /// Monotonicity in image size for fixed everything else.
        #[test]
        fn r_monotone_in_size(m_half in 1usize..7, n_kernel in 1.0f64..30.0) {
            let model = ClosedFormModel::generic(n_kernel);
            let m = 2 * m_half + 1;
            let r1 = model.r_reduced(&geometry(512, m, 32, 4));
            let r2 = model.r_reduced(&geometry(2048, m, 32, 4));
            prop_assert!(r2 >= r1 - 1e-9);
        }
    }
}
