//! # isp-core
//!
//! The paper's primary contribution: **iteration space partitioning (ISP)**
//! for image border handling on GPUs.
//!
//! - [`region`] — the nine-region decomposition (TL, T, TR, L, Body, R, BL,
//!   B, BR) of Figure 1;
//! - [`bounds`] — the threadblock index bounds of Eq. (2) and the per-region
//!   block counts of Eqs. (7)–(8), including the Figure 3 body-fraction
//!   curve;
//! - [`switching`] — the runtime region-switch logic of Listing 3
//!   (block-grained) and Listing 5 (warp-grained);
//! - [`model`] — the analytic benefit model (Eqs. 3–9) and the occupancy
//!   cost model culminating in the prediction `G = R_reduced * O_ISP /
//!   O_naive` (Eq. 10);
//! - [`planner`] — the `isp+m` policy: apply ISP only when the model
//!   predicts a gain.

pub mod bounds;
pub mod model;
pub mod planner;
pub mod region;
pub mod switching;

pub use bounds::{BlockCounts, IndexBounds};
pub use model::{ClosedFormModel, IrStatsModel, PredictionInputs};
pub use planner::{Plan, Planner, Variant};
pub use region::Region;
pub use switching::{region_of_block, region_of_warp, warp_refinement_applicable, WarpBounds};
