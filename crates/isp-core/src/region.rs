//! The nine-region decomposition of the iteration space (paper Figure 1).

/// One of the nine regions the iteration space is partitioned into. Each
/// region needs only the border checks its position implies; the Body needs
/// none at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Top-left corner: left + top checks.
    TL,
    /// Top edge: top check only.
    T,
    /// Top-right corner: right + top checks.
    TR,
    /// Left edge: left check only.
    L,
    /// Interior: no checks.
    Body,
    /// Right edge: right check only.
    R,
    /// Bottom-left corner: left + bottom checks.
    BL,
    /// Bottom edge: bottom check only.
    B,
    /// Bottom-right corner: right + bottom checks.
    BR,
}

impl Region {
    /// All nine regions, row-major (the order of Figure 1).
    pub const ALL: [Region; 9] = [
        Region::TL,
        Region::T,
        Region::TR,
        Region::L,
        Region::Body,
        Region::R,
        Region::BL,
        Region::B,
        Region::BR,
    ];

    /// Stable short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Region::TL => "TL",
            Region::T => "T",
            Region::TR => "TR",
            Region::L => "L",
            Region::Body => "Body",
            Region::R => "R",
            Region::BL => "BL",
            Region::B => "B",
            Region::BR => "BR",
        }
    }

    /// Whether pixels in this region may read past the *left* image edge.
    pub fn checks_left(&self) -> bool {
        matches!(self, Region::TL | Region::L | Region::BL)
    }

    /// Whether pixels in this region may read past the *right* image edge.
    pub fn checks_right(&self) -> bool {
        matches!(self, Region::TR | Region::R | Region::BR)
    }

    /// Whether pixels in this region may read past the *top* image edge.
    pub fn checks_top(&self) -> bool {
        matches!(self, Region::TL | Region::T | Region::TR)
    }

    /// Whether pixels in this region may read past the *bottom* image edge.
    pub fn checks_bottom(&self) -> bool {
        matches!(self, Region::BL | Region::B | Region::BR)
    }

    /// Number of sides this region checks (0 for Body, 1 for edges, 2 for
    /// corners) — the paper's Eq. (6) case split.
    pub fn sides_checked(&self) -> usize {
        [
            self.checks_left(),
            self.checks_right(),
            self.checks_top(),
            self.checks_bottom(),
        ]
        .iter()
        .filter(|&&c| c)
        .count()
    }

    /// Whether this is one of the four corner regions.
    pub fn is_corner(&self) -> bool {
        self.sides_checked() == 2
    }

    /// Region stable index (0..9) in [`Region::ALL`] order.
    pub fn index(&self) -> usize {
        Region::ALL
            .iter()
            .position(|r| r == self)
            .expect("region in ALL")
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sides_checked_partition() {
        let corners: Vec<_> = Region::ALL
            .iter()
            .filter(|r| r.sides_checked() == 2)
            .collect();
        let edges: Vec<_> = Region::ALL
            .iter()
            .filter(|r| r.sides_checked() == 1)
            .collect();
        let body: Vec<_> = Region::ALL
            .iter()
            .filter(|r| r.sides_checked() == 0)
            .collect();
        assert_eq!(corners.len(), 4);
        assert_eq!(edges.len(), 4);
        assert_eq!(body, vec![&Region::Body]);
    }

    #[test]
    fn corner_flags_compose() {
        assert!(Region::TL.checks_left() && Region::TL.checks_top());
        assert!(!Region::TL.checks_right() && !Region::TL.checks_bottom());
        assert!(Region::BR.checks_right() && Region::BR.checks_bottom());
        assert!(Region::T.checks_top() && Region::T.sides_checked() == 1);
        assert!(Region::Body.sides_checked() == 0);
        assert!(Region::TL.is_corner());
        assert!(!Region::L.is_corner());
    }

    #[test]
    fn indices_are_stable() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn names() {
        assert_eq!(Region::Body.to_string(), "Body");
        assert_eq!(Region::TL.name(), "TL");
    }
}
