//! The `isp+m` policy: pick the implementation variant the model predicts
//! to be fastest (paper §VI: "apply ISP based on model prediction").

use crate::bounds::IndexBounds;
use crate::model::PredictionInputs;

/// An implementation variant of a stencil kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// All four border checks everywhere (the baseline).
    Naive,
    /// Fat kernel with block-grained region switching (Listing 3).
    IspBlock,
    /// Fat kernel with warp-grained region switching (Listing 5).
    IspWarp,
    /// No software border handling at all: inputs are bound as 2D textures
    /// and the texture unit's address mode resolves the border (the
    /// hardware alternative the paper's introduction discusses, limited to
    /// whole-image reads).
    Texture,
    /// Shared-memory tiling: the block cooperatively stages its tile plus
    /// halo into on-chip memory (border handling happens once per staged
    /// element instead of once per window access), synchronises, then
    /// computes from the scratchpad. Compiled for a fixed block size.
    Tiled,
}

impl Variant {
    /// Short name used in tables and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Naive => "naive",
            Variant::IspBlock => "isp",
            Variant::IspWarp => "isp-warp",
            Variant::Texture => "texture",
            Variant::Tiled => "tiled",
        }
    }

    /// Whether this variant partitions the iteration space.
    pub fn is_isp(&self) -> bool {
        matches!(self, Variant::IspBlock | Variant::IspWarp)
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The planner's decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// The variant to run.
    pub variant: Variant,
    /// The model's predicted gain `G` of ISP over naive (Eq. 10); 1.0 when
    /// the partitioning is degenerate and ISP was never a candidate.
    pub predicted_gain: f64,
}

/// Chooses between the naive variant and a given ISP variant using the
/// Eq. (10) prediction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Decide which variant to run.
    ///
    /// `isp_variant` is the ISP flavour the compiler produced (block- or
    /// warp-grained); `bounds` gates on partition validity; `inputs` carries
    /// `R_reduced` and the two occupancies.
    pub fn choose(
        &self,
        isp_variant: Variant,
        bounds: &IndexBounds,
        inputs: &PredictionInputs,
    ) -> Plan {
        assert!(
            isp_variant.is_isp(),
            "planner chooses between naive and an ISP variant"
        );
        if !bounds.is_valid() {
            return Plan {
                variant: Variant::Naive,
                predicted_gain: 1.0,
            };
        }
        let g = inputs.gain();
        if g > 1.0 {
            Plan {
                variant: isp_variant,
                predicted_gain: g,
            }
        } else {
            Plan {
                variant: Variant::Naive,
                predicted_gain: g,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Geometry;

    fn bounds(sx: usize, m: usize) -> IndexBounds {
        IndexBounds::new(&Geometry {
            sx,
            sy: sx,
            m,
            n: m,
            tx: 32,
            ty: 4,
        })
    }

    #[test]
    fn picks_isp_when_gain_exceeds_one() {
        let plan = Planner.choose(
            Variant::IspBlock,
            &bounds(2048, 5),
            &PredictionInputs {
                r_reduced: 1.6,
                occ_naive: 1.0,
                occ_isp: 0.9,
            },
        );
        assert_eq!(plan.variant, Variant::IspBlock);
        assert!(plan.predicted_gain > 1.0);
    }

    #[test]
    fn falls_back_to_naive_on_occupancy_loss() {
        // The 512^2 bilateral-on-Kepler case.
        let plan = Planner.choose(
            Variant::IspWarp,
            &bounds(512, 13),
            &PredictionInputs {
                r_reduced: 1.05,
                occ_naive: 1.0,
                occ_isp: 0.75,
            },
        );
        assert_eq!(plan.variant, Variant::Naive);
        assert!(plan.predicted_gain < 1.0);
    }

    #[test]
    fn degenerate_bounds_force_naive() {
        let plan = Planner.choose(
            Variant::IspBlock,
            &bounds(32, 13), // single block column needing both x checks
            &PredictionInputs {
                r_reduced: 2.0,
                occ_naive: 1.0,
                occ_isp: 1.0,
            },
        );
        assert_eq!(plan.variant, Variant::Naive);
        assert_eq!(plan.predicted_gain, 1.0);
    }

    #[test]
    #[should_panic(expected = "ISP variant")]
    fn planner_rejects_naive_as_isp_candidate() {
        let _ = Planner.choose(
            Variant::Naive,
            &bounds(512, 5),
            &PredictionInputs {
                r_reduced: 1.0,
                occ_naive: 1.0,
                occ_isp: 1.0,
            },
        );
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::Naive.to_string(), "naive");
        assert_eq!(Variant::IspBlock.to_string(), "isp");
        assert_eq!(Variant::IspWarp.to_string(), "isp-warp");
        assert!(!Variant::Naive.is_isp());
        assert!(Variant::IspWarp.is_isp());
    }
}
