//! Threadblock index bounds (Eq. 2) and per-region block counts (Eqs. 7–8).

use crate::region::Region;

/// The geometry a partitioning is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Image width `sx`.
    pub sx: usize,
    /// Image height `sy`.
    pub sy: usize,
    /// Window width `m` (odd).
    pub m: usize,
    /// Window height `n` (odd).
    pub n: usize,
    /// Block width `tx`.
    pub tx: u32,
    /// Block height `ty`.
    pub ty: u32,
}

impl Geometry {
    /// Horizontal stencil radius `m/2`.
    pub fn rx(&self) -> usize {
        self.m / 2
    }

    /// Vertical stencil radius `n/2`.
    pub fn ry(&self) -> usize {
        self.n / 2
    }

    /// Grid size in blocks (ceil division, as launched).
    pub fn grid(&self) -> (u32, u32) {
        (
            (self.sx as u32).div_ceil(self.tx),
            (self.sy as u32).div_ceil(self.ty),
        )
    }
}

/// The four block-index bounds of the paper's Eq. (2).
///
/// A block with `bh_l <= bx < bh_r` and `bh_t <= by < bh_b` requires no
/// border handling. Blocks with `bx < bh_l` need the left check, blocks with
/// `bx >= bh_r` need the right check, and analogously in y.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexBounds {
    /// First block index (x) that needs no left check.
    pub bh_l: u32,
    /// First block index (x) that needs the right check.
    pub bh_r: u32,
    /// First block index (y) that needs no top check.
    pub bh_t: u32,
    /// First block index (y) that needs the bottom check.
    pub bh_b: u32,
    /// Grid this was computed for.
    pub grid: (u32, u32),
}

impl IndexBounds {
    /// Derive the bounds from geometry.
    ///
    /// ```
    /// use isp_core::bounds::{Geometry, IndexBounds};
    /// // 512x512 image, 5x5 window, 32x4 blocks (the paper's defaults).
    /// let g = Geometry { sx: 512, sy: 512, m: 5, n: 5, tx: 32, ty: 4 };
    /// let b = IndexBounds::new(&g);
    /// assert_eq!((b.bh_l, b.bh_r, b.bh_t, b.bh_b), (1, 15, 1, 127));
    /// assert!(b.is_valid());
    /// assert!(b.block_counts().body_fraction() > 0.85);
    /// ```
    ///
    /// Derivation (x-axis; y is analogous): block `bx` covers pixels
    /// `[bx*tx, min((bx+1)*tx, sx))`. It may read past the left edge iff its
    /// smallest pixel is `< rx`, i.e. `bx*tx < rx`, giving
    /// `bh_l = ceil(rx/tx)`. It may read past the right edge iff its largest
    /// pixel is `>= sx - rx`; the first such block is the one containing
    /// pixel `sx - rx`, giving `bh_r = floor((sx - rx)/tx)`.
    pub fn new(g: &Geometry) -> Self {
        let (gx, gy) = g.grid();
        let rx = g.rx() as u32;
        let ry = g.ry() as u32;
        let bh_l = rx.div_ceil(g.tx).min(gx);
        let bh_t = ry.div_ceil(g.ty).min(gy);
        // Radius 0 means no pixel ever reads past the right/bottom edge; the
        // "block containing pixel sx - rx" formula would otherwise point at
        // the non-existent pixel sx.
        let bh_r = if rx == 0 {
            gx
        } else {
            ((g.sx as u32 - rx) / g.tx).min(gx)
        };
        let bh_b = if ry == 0 {
            gy
        } else {
            ((g.sy as u32 - ry) / g.ty).min(gy)
        };
        IndexBounds {
            bh_l,
            bh_r,
            bh_t,
            bh_b,
            grid: (gx, gy),
        }
    }

    /// Whether the 9-region decomposition is well-formed: every block needs
    /// at most one check per axis. Degenerate when the image is so small
    /// (relative to block and window) that a single block would need both
    /// the left *and* right checks — the compiler then falls back to the
    /// naive variant, which is also what the model would pick.
    pub fn is_valid(&self) -> bool {
        self.bh_l <= self.bh_r && self.bh_t <= self.bh_b
    }

    /// Block counts per region (Eq. 8a/8b).
    pub fn block_counts(&self) -> BlockCounts {
        let (gx, gy) = self.grid;
        let nx_l = self.bh_l as u64;
        let nx_r = (gx - self.bh_r) as u64;
        let nx_mid = (self.bh_r - self.bh_l) as u64;
        let ny_t = self.bh_t as u64;
        let ny_b = (gy - self.bh_b) as u64;
        let ny_mid = (self.bh_b - self.bh_t) as u64;
        BlockCounts {
            counts: [
                nx_l * ny_t,     // TL
                nx_mid * ny_t,   // T
                nx_r * ny_t,     // TR
                nx_l * ny_mid,   // L
                nx_mid * ny_mid, // Body
                nx_r * ny_mid,   // R
                nx_l * ny_b,     // BL
                nx_mid * ny_b,   // B
                nx_r * ny_b,     // BR
            ],
        }
    }
}

/// Number of threadblocks executing each region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCounts {
    counts: [u64; 9],
}

impl BlockCounts {
    /// Blocks executing `region`.
    pub fn get(&self, region: Region) -> u64 {
        self.counts[region.index()]
    }

    /// Total blocks across all regions (must equal the grid size).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of blocks executing the Body region — the Figure 3 curve.
    pub fn body_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.get(Region::Body) as f64 / self.total() as f64
        }
    }

    /// Iterate `(region, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Region, u64)> + '_ {
        Region::ALL.iter().map(move |&r| (r, self.get(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geom(sx: usize, sy: usize, m: usize, n: usize, tx: u32, ty: u32) -> Geometry {
        Geometry {
            sx,
            sy,
            m,
            n,
            tx,
            ty,
        }
    }

    /// Brute-force: does block bx (x-axis) contain a pixel needing a
    /// left/right check?
    fn brute_needs(g: &Geometry, b: u32, axis_len: usize, t: u32, r: usize) -> (bool, bool) {
        let lo = (b * t) as usize;
        let hi = (((b + 1) * t) as usize).min(axis_len);
        let mut left = false;
        let mut right = false;
        for x in lo..hi {
            if (x as i64) - (r as i64) < 0 {
                left = true;
            }
            if x + r >= axis_len {
                right = true;
            }
        }
        let _ = g;
        (left, right)
    }

    #[test]
    fn bounds_match_brute_force_on_paper_configs() {
        for (sx, m, tx) in [
            (512usize, 3usize, 32u32),
            (512, 5, 32),
            (512, 13, 32),
            (1024, 13, 128),
            (2048, 5, 64),
            (4096, 17, 128),
            (96, 13, 32),
        ] {
            let g = geom(sx, sx, m, m, tx, 4);
            let b = IndexBounds::new(&g);
            let (gx, _) = g.grid();
            for bx in 0..gx {
                let (l, r) = brute_needs(&g, bx, sx, tx, g.rx());
                assert_eq!(bx < b.bh_l, l, "left: sx={sx} m={m} tx={tx} bx={bx}");
                assert_eq!(bx >= b.bh_r, r, "right: sx={sx} m={m} tx={tx} bx={bx}");
            }
        }
    }

    #[test]
    fn paper_example_512_block32x4_window5() {
        // 5x5 window, radius 2; 32x4 blocks on 512x512.
        let g = geom(512, 512, 5, 5, 32, 4);
        let b = IndexBounds::new(&g);
        assert_eq!(b.grid, (16, 128));
        assert_eq!(b.bh_l, 1, "only block column 0 needs the left check");
        assert_eq!(b.bh_r, 15, "only block column 15 needs the right check");
        assert_eq!(b.bh_t, 1);
        assert_eq!(b.bh_b, 127);
        assert!(b.is_valid());
        let c = b.block_counts();
        assert_eq!(c.get(Region::TL), 1);
        assert_eq!(c.get(Region::T), 14);
        assert_eq!(c.get(Region::L), 126);
        assert_eq!(c.get(Region::Body), 14 * 126);
        assert_eq!(c.total(), 16 * 128);
    }

    #[test]
    fn window_1x1_has_no_border_blocks() {
        let g = geom(256, 256, 1, 1, 32, 4);
        let b = IndexBounds::new(&g);
        let c = b.block_counts();
        assert_eq!(c.body_fraction(), 1.0);
        assert_eq!(c.get(Region::TL) + c.get(Region::T) + c.get(Region::R), 0);
    }

    #[test]
    fn degenerate_when_blocks_span_image() {
        // 32-wide image, 32-wide blocks, radius 6: the single block column
        // needs both left and right checks -> invalid for 9-region ISP.
        let g = geom(32, 512, 13, 13, 32, 4);
        let b = IndexBounds::new(&g);
        assert!(!b.is_valid());
    }

    #[test]
    fn body_fraction_grows_with_image_size() {
        // Figure 3's qualitative claim. (At 256^2 with 128-wide blocks the
        // body fraction is still zero in x: only two block columns exist.)
        let mut prev = -1.0;
        for sx in [256usize, 512, 1024, 2048, 4096] {
            let g = geom(sx, sx, 5, 5, 128, 1);
            let f = IndexBounds::new(&g).block_counts().body_fraction();
            assert!(f > prev, "body fraction must grow: {f} at {sx}");
            prev = f;
        }
        assert!(prev > 0.9);
    }

    #[test]
    fn larger_blocks_lower_body_fraction_at_small_sizes() {
        // Figure 3's second claim: given a small image, a larger block size
        // leaves fewer body blocks.
        let small = IndexBounds::new(&geom(256, 256, 5, 5, 32, 4))
            .block_counts()
            .body_fraction();
        let large = IndexBounds::new(&geom(256, 256, 5, 5, 128, 2))
            .block_counts()
            .body_fraction();
        assert!(large < small, "large {large} vs small {small}");
    }

    proptest! {
        /// Eq. 8b: region block counts always partition the grid.
        #[test]
        fn block_counts_partition_grid(
            sx in 64usize..2048,
            sy in 64usize..2048,
            half_m in 0usize..9,
            tx_pow in 5u32..8,
            ty in 1u32..9,
        ) {
            let m = 2 * half_m + 1;
            let tx = 1u32 << tx_pow;
            let g = geom(sx, sy, m, m, tx, ty);
            let b = IndexBounds::new(&g);
            prop_assume!(b.is_valid());
            let c = b.block_counts();
            let (gx, gy) = g.grid();
            prop_assert_eq!(c.total(), gx as u64 * gy as u64);
        }

        /// Every block is classified consistently with the bounds by
        /// brute force on both axes.
        #[test]
        fn bounds_agree_with_brute_force(
            sx in 33usize..1500,
            rx in 0usize..16,
            tx_pow in 5u32..8,
        ) {
            let tx = 1u32 << tx_pow;
            let m = 2 * rx + 1;
            prop_assume!(rx < 32);
            let g = geom(sx, 128, m, m, tx, 4);
            let b = IndexBounds::new(&g);
            prop_assume!(b.is_valid());
            let (gx, _) = g.grid();
            for bx in 0..gx {
                let (l, r) = brute_needs(&g, bx, sx, tx, rx);
                prop_assert_eq!(bx < b.bh_l, l);
                prop_assert_eq!(bx >= b.bh_r, r);
            }
        }
    }
}
