//! Runtime region switching — the paper's Listing 3 (block-grained) and
//! Listing 5 (warp-grained), as host-side logic.
//!
//! These functions are the *semantic reference* for the switch code the DSL
//! compiler emits into fat kernels: tests assert the generated IR routes
//! every block/warp to the same region as these functions, and the
//! region-sampled simulator uses them as block classifiers.

use crate::bounds::IndexBounds;
use crate::region::Region;

/// Block-grained region switch (paper Listing 3): classify a threadblock by
/// its block indices against the Eq. (2) bounds. The comparison order
/// matches the listing exactly (corners first, then bottom/right/left
/// priority), so any tie-breaking behaviour is faithfully reproduced.
pub fn region_of_block(bx: u32, by: u32, b: &IndexBounds) -> Region {
    if bx < b.bh_l && by < b.bh_t {
        return Region::TL;
    }
    if bx >= b.bh_r && by < b.bh_t {
        return Region::TR;
    }
    if by < b.bh_t {
        return Region::T;
    }
    if by >= b.bh_b && bx < b.bh_l {
        return Region::BL;
    }
    if by >= b.bh_b && bx >= b.bh_r {
        return Region::BR;
    }
    if by >= b.bh_b {
        return Region::B;
    }
    if bx >= b.bh_r {
        return Region::R;
    }
    if bx < b.bh_l {
        return Region::L;
    }
    Region::Body
}

/// Warp index bounds for Listing 5: `W_L` is the last warp (in x) of a
/// left-border block that still touches the left margin; `W_R` is the first
/// warp of a right-border block that touches the right margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpBounds {
    /// Warps with `warp_x > w_l` in a left-border block need no left check.
    pub w_l: u32,
    /// Warps with `warp_x < w_r` in a right-border block need no right check.
    pub w_r: u32,
}

impl WarpBounds {
    /// Compute warp bounds for an image of width `sx`, horizontal radius
    /// `rx`, and block width `tx` (multiple of the 32-lane warp width).
    ///
    /// `w_l = floor((rx - 1)/32)`: the warp containing the last pixel
    /// (`rx - 1`) that can read past the left edge.
    /// `w_r = ((sx - rx) - block_start)/32` for the rightmost block: the
    /// warp containing the first pixel that can read past the right edge.
    pub fn new(sx: usize, rx: usize, tx: u32, grid_x: u32) -> WarpBounds {
        debug_assert!(tx.is_multiple_of(32), "block width must be warp-aligned");
        let w_l = if rx == 0 { 0 } else { ((rx - 1) / 32) as u32 };
        let last_start = ((grid_x - 1) * tx) as usize;
        let first_checked = sx - rx;
        let w_r = if first_checked >= last_start {
            ((first_checked - last_start) / 32) as u32
        } else {
            0
        };
        WarpBounds { w_l, w_r }
    }
}

/// Whether warp-grained refinement (Listing 5) is applicable: blocks must be
/// wider than one warp (otherwise there is nothing to refine), and the
/// left/right border block columns must be exactly the outermost ones (the
/// global `W_L`/`W_R` constants are only meaningful then; true whenever the
/// stencil radius is smaller than the block width, which covers every
/// configuration in the paper's evaluation).
pub fn warp_refinement_applicable(b: &IndexBounds, tx: u32) -> bool {
    tx > 32 && tx.is_multiple_of(32) && b.is_valid() && b.bh_l <= 1 && b.bh_r + 1 >= b.grid.0
}

/// Warp-grained region switch (paper Listing 5): refine the block-grained
/// region by the warp's x-position, redirecting interior warps of border
/// blocks to cheaper regions (TL -> T, BL -> B, L -> Body, etc.).
pub fn region_of_warp(bx: u32, by: u32, warp_x: u32, b: &IndexBounds, wb: &WarpBounds) -> Region {
    if bx < b.bh_l && by < b.bh_t {
        if warp_x > wb.w_l {
            return Region::T;
        }
        return Region::TL;
    }
    if bx >= b.bh_r && by < b.bh_t {
        if warp_x < wb.w_r {
            return Region::T;
        }
        return Region::TR;
    }
    if by < b.bh_t {
        return Region::T;
    }
    if by >= b.bh_b && bx < b.bh_l {
        if warp_x > wb.w_l {
            return Region::B;
        }
        return Region::BL;
    }
    if by >= b.bh_b && bx >= b.bh_r {
        if warp_x < wb.w_r {
            return Region::B;
        }
        return Region::BR;
    }
    if by >= b.bh_b {
        return Region::B;
    }
    if bx >= b.bh_r {
        if warp_x < wb.w_r {
            return Region::Body;
        }
        return Region::R;
    }
    if bx < b.bh_l {
        if warp_x > wb.w_l {
            return Region::Body;
        }
        return Region::L;
    }
    Region::Body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Geometry;
    use proptest::prelude::*;

    fn bounds(sx: usize, sy: usize, m: usize, tx: u32, ty: u32) -> IndexBounds {
        IndexBounds::new(&Geometry {
            sx,
            sy,
            m,
            n: m,
            tx,
            ty,
        })
    }

    #[test]
    fn block_switch_classifies_all_nine_regions() {
        let b = bounds(512, 512, 5, 32, 4);
        assert_eq!(region_of_block(0, 0, &b), Region::TL);
        assert_eq!(region_of_block(7, 0, &b), Region::T);
        assert_eq!(region_of_block(15, 0, &b), Region::TR);
        assert_eq!(region_of_block(0, 64, &b), Region::L);
        assert_eq!(region_of_block(7, 64, &b), Region::Body);
        assert_eq!(region_of_block(15, 64, &b), Region::R);
        assert_eq!(region_of_block(0, 127, &b), Region::BL);
        assert_eq!(region_of_block(7, 127, &b), Region::B);
        assert_eq!(region_of_block(15, 127, &b), Region::BR);
    }

    #[test]
    fn block_switch_counts_match_block_counts() {
        // Consistency between the classifier and Eq. 8.
        let b = bounds(1024, 768, 13, 32, 4);
        let mut counted = [0u64; 9];
        for by in 0..b.grid.1 {
            for bx in 0..b.grid.0 {
                counted[region_of_block(bx, by, &b).index()] += 1;
            }
        }
        for (region, expect) in b.block_counts().iter() {
            assert_eq!(counted[region.index()], expect, "{region}");
        }
    }

    #[test]
    fn warp_bounds_basic() {
        // 512 wide, radius 2, 128-wide blocks (4 warps), 4 block columns.
        let wb = WarpBounds::new(512, 2, 128, 4);
        assert_eq!(wb.w_l, 0, "only warp 0 touches the left margin");
        // First right-checked pixel 510; last block starts at 384;
        // (510-384)/32 = 3.
        assert_eq!(wb.w_r, 3, "only warp 3 touches the right margin");
    }

    #[test]
    fn warp_refinement_redirects_interior_warps() {
        let b = bounds(512, 512, 5, 128, 1);
        let wb = WarpBounds::new(512, 2, 128, b.grid.0);
        assert!(warp_refinement_applicable(&b, 128));
        // Left block, interior row: warp 0 stays L, warps 1-3 go to Body.
        assert_eq!(region_of_warp(0, 200, 0, &b, &wb), Region::L);
        assert_eq!(region_of_warp(0, 200, 1, &b, &wb), Region::Body);
        assert_eq!(region_of_warp(0, 200, 3, &b, &wb), Region::Body);
        // Right block: warps 0-2 go to Body, warp 3 stays R.
        assert_eq!(region_of_warp(3, 200, 0, &b, &wb), Region::Body);
        assert_eq!(region_of_warp(3, 200, 3, &b, &wb), Region::R);
        // Top-left block: warp 0 stays TL, others become T.
        assert_eq!(region_of_warp(0, 0, 0, &b, &wb), Region::TL);
        assert_eq!(region_of_warp(0, 0, 2, &b, &wb), Region::T);
        // Bottom-right: interior warps become B.
        let last = b.grid.1 - 1;
        assert_eq!(region_of_warp(3, last, 3, &b, &wb), Region::BR);
        assert_eq!(region_of_warp(3, last, 0, &b, &wb), Region::B);
    }

    #[test]
    fn warp_refinement_applicability() {
        // 32-wide blocks: nothing to refine.
        assert!(!warp_refinement_applicable(&bounds(512, 512, 5, 32, 4), 32));
        // 128-wide blocks with small radius: applicable.
        assert!(warp_refinement_applicable(
            &bounds(512, 512, 5, 128, 1),
            128
        ));
        // Degenerate bounds: not applicable.
        assert!(!warp_refinement_applicable(
            &bounds(96, 512, 13, 128, 1),
            128
        ));
    }

    // The safety property that makes warp-grained ISP correct: a warp
    // redirected to a cheaper region must not contain ANY pixel that needs
    // the checks it skipped.
    proptest! {
        #[test]
        fn warp_refinement_never_skips_needed_checks(
            sx_pow in 7u32..12,
            rx in 1usize..16,
            ty in 1u32..5,
        ) {
            let sx = 1usize << sx_pow;
            let tx = 128u32;
            let m = 2 * rx + 1;
            let b = bounds(sx, sx, m, tx, ty);
            prop_assume!(warp_refinement_applicable(&b, tx));
            let wb = WarpBounds::new(sx, rx, tx, b.grid.0);
            for by in [0, b.grid.1 / 2, b.grid.1 - 1] {
                for bx in 0..b.grid.0 {
                    for warp_x in 0..tx / 32 {
                        let region = region_of_warp(bx, by, warp_x, &b, &wb);
                        // Every pixel covered by this warp:
                        for lane in 0..32u32 {
                            let gx = (bx * tx + warp_x * 32 + lane) as usize;
                            if gx >= sx { continue; }
                            let needs_left = gx < rx;
                            let needs_right = gx + rx >= sx;
                            prop_assert!(!needs_left || region.checks_left(),
                                "pixel {gx} needs left check but region {region} skips it");
                            prop_assert!(!needs_right || region.checks_right(),
                                "pixel {gx} needs right check but region {region} skips it");
                        }
                    }
                }
            }
        }

        /// Block switch agrees with a direct bound comparison on each axis.
        #[test]
        fn block_switch_consistent(
            bx in 0u32..64,
            by in 0u32..64,
            sx in 256usize..2048,
            m_half in 1usize..9,
        ) {
            let b = bounds(sx, sx, 2 * m_half + 1, 32, 4);
            prop_assume!(bx < b.grid.0 && by < b.grid.1);
            let r = region_of_block(bx, by, &b);
            prop_assert_eq!(r.checks_left(), bx < b.bh_l);
            prop_assert_eq!(r.checks_right(), bx >= b.bh_r);
            prop_assert_eq!(r.checks_top(), by < b.bh_t);
            prop_assert_eq!(r.checks_bottom(), by >= b.bh_b);
        }
    }
}
