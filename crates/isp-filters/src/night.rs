//! Night filter — the paper's 5-kernel pipeline: an à-trous ("with holes")
//! denoising cascade at window sizes 3, 5, 9, 17, followed by tone mapping.
//! The most expensive app in the evaluation and the one with the smallest
//! ISP gain (geomean 1.102), because kernel computation dwarfs the address
//! arithmetic.

use isp_dsl::pipeline::{Stage, StageInput};
use isp_dsl::{Expr, KernelSpec, Pipeline};
use isp_image::Mask;

/// Dilation factors of the à-trous cascade: windows 3, 5, 9, 17.
pub const DILATIONS: [usize; 4] = [1, 2, 4, 8];

/// The 3x3 base kernel spread by each dilation level.
pub fn base_mask() -> Mask {
    Mask::gaussian(3, 0.85).expect("odd window")
}

/// The à-trous convolution at one dilation level.
pub fn spec_atrous(dilation: usize) -> KernelSpec {
    let mask = Mask::atrous(&base_mask(), dilation).expect("valid dilation");
    KernelSpec::convolution(format!("atrous_d{dilation}"), &mask)
}

/// The tone-mapping point operator: global Reinhard with exposure gain,
/// `out = g*x / (1 + g*x)` with `g = user_params[0]`.
pub fn spec_tonemap() -> KernelSpec {
    let x = Expr::input_at(0, 0, 0) * Expr::param(0);
    KernelSpec::new("tonemap", 1, vec!["exposure".into()], x.clone() / (x + 1.0))
}

/// Default exposure gain for the tone mapper.
pub const DEFAULT_EXPOSURE: f32 = 4.0;

/// The full 5-kernel pipeline (4 à-trous levels chained + tone mapping).
pub fn pipeline() -> Pipeline {
    let mut stages: Vec<Stage> = Vec::with_capacity(5);
    stages.push(Stage::from_source(spec_atrous(DILATIONS[0])));
    for (i, &d) in DILATIONS.iter().enumerate().skip(1) {
        stages.push(Stage::from_stage(spec_atrous(d), i - 1));
    }
    stages.push(Stage {
        spec: spec_tonemap(),
        inputs: vec![StageInput::Stage(DILATIONS.len() - 1)],
        user_params: vec![DEFAULT_EXPOSURE],
    });
    Pipeline::new("night", stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{BorderSpec, Image, ImageGenerator};

    #[test]
    fn pipeline_shape_matches_paper() {
        let p = pipeline();
        assert_eq!(p.stages.len(), 5);
        let windows: Vec<usize> = p.stages[..4].iter().map(|s| s.spec.window().0).collect();
        assert_eq!(windows, vec![3, 5, 9, 17]);
        assert!(p.stages[4].spec.is_point_op());
        // Each atrous stage touches only 9 pixels despite its window.
        for s in &p.stages[..4] {
            assert_eq!(s.spec.body.accesses().len(), 9);
        }
    }

    #[test]
    fn denoises_dark_scenes_and_brightens() {
        let img = ImageGenerator::new(13).night_scene::<f32>(64, 64, 5);
        let out = pipeline().reference(&img, BorderSpec::clamp());
        // Tone mapping brightens the dark input.
        assert!(out.mean() > img.mean(), "{} vs {}", out.mean(), img.mean());
        // Output stays in [0, 1): Reinhard never reaches 1.
        let (lo, hi) = out.min_max();
        assert!(lo >= 0.0 && hi < 1.0);
    }

    #[test]
    fn tonemap_is_monotone() {
        let ramp = Image::<f32>::from_fn(64, 1, |x, _| x as f32 / 63.0);
        let tm = Pipeline::new(
            "tm",
            vec![Stage {
                spec: spec_tonemap(),
                inputs: vec![StageInput::Source],
                user_params: vec![DEFAULT_EXPOSURE],
            }],
        );
        let out = tm.reference(&ramp, BorderSpec::clamp());
        for x in 1..64 {
            assert!(out.get(x, 0) >= out.get(x - 1, 0));
        }
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn cascade_smooths_progressively() {
        let img = ImageGenerator::new(4).uniform_noise::<f32>(64, 64);
        let border = BorderSpec::mirror();
        let var = |i: &Image<f32>| {
            let m = i.mean();
            i.pixels()
                .map(|(_, _, v)| (v as f64 - m).powi(2))
                .sum::<f64>()
                / i.len() as f64
        };
        let mut prev = var(&img);
        let mut current = img;
        for &d in &DILATIONS {
            let st = Pipeline::new("one", vec![Stage::from_source(spec_atrous(d))]);
            current = st.reference(&current, border);
            let v = var(&current);
            assert!(v < prev, "level d={d} must reduce variance: {v} vs {prev}");
            prev = v;
        }
    }
}
