//! Morphological operators (erosion, dilation, opening, closing) —
//! min/max stencils built on the DSL's non-additive fused reductions.
//!
//! Not part of the paper's evaluation set, but squarely inside Hipacc's
//! application domain, and a useful stressor: morphology windows are often
//! large and the kernels are extremely cheap, the regime where ISP shines.

use isp_dsl::pipeline::{Stage, StageInput};
use isp_dsl::{Expr, KernelSpec, Pipeline};

fn window_terms(window: usize) -> Vec<Expr> {
    assert!(window % 2 == 1, "odd windows only");
    let r = (window / 2) as i64;
    let mut terms = Vec::with_capacity(window * window);
    for dy in -r..=r {
        for dx in -r..=r {
            terms.push(Expr::at(dx, dy));
        }
    }
    terms
}

/// Erosion: windowed minimum.
pub fn spec_erode(window: usize) -> KernelSpec {
    KernelSpec::new(
        format!("erode{window}"),
        1,
        vec![],
        Expr::fused_min(window_terms(window)),
    )
}

/// Dilation: windowed maximum.
pub fn spec_dilate(window: usize) -> KernelSpec {
    KernelSpec::new(
        format!("dilate{window}"),
        1,
        vec![],
        Expr::fused_max(window_terms(window)),
    )
}

/// Opening: erosion followed by dilation (removes bright specks).
pub fn opening(window: usize) -> Pipeline {
    Pipeline::new(
        "opening",
        vec![
            Stage::from_source(spec_erode(window)),
            Stage::from_stage(spec_dilate(window), 0),
        ],
    )
}

/// Closing: dilation followed by erosion (fills dark pinholes).
pub fn closing(window: usize) -> Pipeline {
    Pipeline::new(
        "closing",
        vec![
            Stage::from_source(spec_dilate(window)),
            Stage::from_stage(spec_erode(window), 0),
        ],
    )
}

/// Morphological gradient: dilation minus erosion (edge thickness map).
pub fn gradient(window: usize) -> Pipeline {
    let diff = KernelSpec::new(
        "morph_gradient_diff",
        2,
        vec![],
        Expr::input_at(0, 0, 0) - Expr::input_at(1, 0, 0),
    );
    Pipeline::new(
        "morph_gradient",
        vec![
            Stage::from_source(spec_dilate(window)),
            Stage::from_source(spec_erode(window)),
            Stage {
                spec: diff,
                inputs: vec![StageInput::Stage(0), StageInput::Stage(1)],
                user_params: vec![],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{BorderSpec, Image, ImageGenerator};

    #[test]
    fn erosion_and_dilation_bracket_the_input() {
        let img = ImageGenerator::new(3).natural::<f32>(40, 30);
        let border = BorderSpec::clamp();
        let eroded =
            Pipeline::new("e", vec![Stage::from_source(spec_erode(3))]).reference(&img, border);
        let dilated =
            Pipeline::new("d", vec![Stage::from_source(spec_dilate(3))]).reference(&img, border);
        for (x, y, v) in img.pixels() {
            assert!(eroded.get(x, y) <= v + 1e-6, "erosion only shrinks");
            assert!(dilated.get(x, y) >= v - 1e-6, "dilation only grows");
        }
    }

    #[test]
    fn erosion_dilation_duality() {
        // erode(f) == -dilate(-f): min/max duality.
        let img = ImageGenerator::new(9).uniform_noise::<f32>(24, 24);
        let neg = img.map(|v| -v);
        let border = BorderSpec::mirror();
        let a = Pipeline::new("e", vec![Stage::from_source(spec_erode(5))]).reference(&img, border);
        let b = Pipeline::new("d", vec![Stage::from_source(spec_dilate(5))])
            .reference(&neg, border)
            .map(|v| -v);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn opening_removes_bright_specks() {
        // A single bright pixel on a dark field disappears under opening.
        let mut img = Image::<f32>::filled(32, 32, 0.1);
        img.set(16, 16, 1.0);
        let out = opening(3).reference(&img, BorderSpec::clamp());
        assert!(
            out.get(16, 16) < 0.11,
            "speck must vanish, got {}",
            out.get(16, 16)
        );
    }

    #[test]
    fn closing_fills_dark_pinholes() {
        let mut img = Image::<f32>::filled(32, 32, 0.9);
        img.set(10, 10, 0.0);
        let out = closing(3).reference(&img, BorderSpec::clamp());
        assert!(
            out.get(10, 10) > 0.89,
            "pinhole must fill, got {}",
            out.get(10, 10)
        );
    }

    #[test]
    fn gradient_highlights_edges() {
        let img = Image::<f32>::from_fn(32, 32, |x, _| if x < 16 { 0.0 } else { 1.0 });
        let out = gradient(3).reference(&img, BorderSpec::clamp());
        // At the step, dilate=1 and erode=0 -> gradient 1; far away 0.
        assert!(out.get(15, 16) > 0.99);
        assert!(out.get(16, 16) > 0.99);
        assert!(out.get(4, 16) < 1e-6);
        assert!(out.get(28, 16) < 1e-6);
    }

    #[test]
    fn idempotence_of_opening() {
        // opening(opening(f)) == opening(f).
        let img = ImageGenerator::new(4).uniform_noise::<f32>(24, 24);
        let border = BorderSpec::clamp();
        let once = opening(3).reference(&img, border);
        let twice = opening(3).reference(&once, border);
        assert!(once.max_abs_diff(&twice).unwrap() < 1e-6);
    }
}
