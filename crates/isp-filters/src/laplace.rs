//! Laplacian edge detector (5x5 in the paper's evaluation).

use isp_dsl::pipeline::Stage;
use isp_dsl::{KernelSpec, Pipeline};
use isp_image::Mask;

/// The paper's evaluation window size.
pub const PAPER_WINDOW: usize = 5;

/// The Laplacian mask (3 or 5 supported, as in `isp-image`).
pub fn mask(window: usize) -> Mask {
    Mask::laplace(window).expect("supported laplace window")
}

/// Kernel spec for the Laplacian.
pub fn spec(window: usize) -> KernelSpec {
    KernelSpec::convolution(format!("laplace{window}"), &mask(window))
}

/// Single-stage pipeline with the paper's 5x5 window.
pub fn pipeline() -> Pipeline {
    Pipeline::new("laplace", vec![Stage::from_source(spec(PAPER_WINDOW))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{BorderSpec, Image, ImageGenerator};

    #[test]
    fn flat_regions_give_zero_response() {
        let img = Image::<f32>::filled(32, 32, 0.7);
        let out = pipeline().reference(&img, BorderSpec::clamp());
        let (lo, hi) = out.min_max();
        assert!(
            lo.abs() < 1e-5 && hi.abs() < 1e-5,
            "laplacian of constant is 0"
        );
    }

    #[test]
    fn edges_give_strong_response() {
        let img = ImageGenerator::new(1).checkerboard::<f32>(32, 32, 8);
        let out = pipeline().reference(&img, BorderSpec::mirror());
        let (lo, hi) = out.min_max();
        assert!(hi > 1.0, "positive response at edges, got {hi}");
        assert!(lo < -1.0, "negative response at edges, got {lo}");
        // Interior of a flat cell: zero.
        assert!(out.get(4, 4).abs() < 1e-5);
    }

    #[test]
    fn sparse_domain_skips_zero_cells() {
        // The 5x5 integer Laplacian has 13 non-zero cells of 25.
        assert_eq!(spec(5).body.accesses().len(), 13);
        assert_eq!(spec(3).body.accesses().len(), 5);
    }
}
