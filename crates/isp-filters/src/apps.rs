//! The application registry the bench harness iterates over.

use isp_dsl::Pipeline;

/// One evaluated application.
#[derive(Debug, Clone)]
pub struct App {
    /// Display name as used in the paper's tables and figures.
    pub name: &'static str,
    /// The pipeline to compile and run.
    pub pipeline: Pipeline,
    /// One-line description of the workload.
    pub description: &'static str,
}

/// The paper's five applications, in its reporting order.
pub fn all_apps() -> Vec<App> {
    vec![
        App {
            name: "Gaussian",
            pipeline: crate::gaussian::pipeline(),
            description: "3x3 Gaussian smoothing (single cheap kernel)",
        },
        App {
            name: "Laplace",
            pipeline: crate::laplace::pipeline(),
            description: "5x5 Laplacian edge detection (single kernel, sparse mask)",
        },
        App {
            name: "Bilateral",
            pipeline: crate::bilateral::pipeline(),
            description: "13x13 bilateral filter (single expensive kernel, SFU-heavy)",
        },
        App {
            name: "Sobel",
            pipeline: crate::sobel::pipeline(),
            description: "3-kernel Sobel: x/y derivatives + magnitude point op",
        },
        App {
            name: "Night",
            pipeline: crate::night::pipeline(),
            description: "5-kernel night enhancement: atrous 3/5/9/17 + tone mapping",
        },
    ]
}

/// Look up an app by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<App> {
    all_apps()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper() {
        let apps = all_apps();
        assert_eq!(apps.len(), 5);
        let names: Vec<_> = apps.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec!["Gaussian", "Laplace", "Bilateral", "Sobel", "Night"]
        );
        // Kernel counts per app: 1, 1, 1, 3, 5.
        let kernels: Vec<usize> = apps.iter().map(|a| a.pipeline.stages.len()).collect();
        assert_eq!(kernels, vec![1, 1, 1, 3, 5]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("sobel").is_some());
        assert!(by_name("BILATERAL").is_some());
        assert!(by_name("unsharp").is_none());
    }
}
