//! 3x3 median filter via a branch-free min/max exchange network — the
//! classic GPU formulation (no sorting, no divergence), expressible in the
//! DSL with nothing but `min`/`max` nodes. Strong salt-and-pepper noise
//! removal, and another cheap-kernel/many-checks data point for ISP.

use isp_dsl::pipeline::Stage;
use isp_dsl::{Expr, KernelSpec, Pipeline};

/// Sort-free 3x3 median via Paeth's 19-exchange network: each exchange is
/// one `min` + one `max`, so the whole kernel is 38 branch-free ALU ops.
pub fn spec() -> KernelSpec {
    // The nine window samples, row-major.
    let mut p: Vec<Expr> = Vec::with_capacity(9);
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            p.push(Expr::at(dx, dy));
        }
    }
    // Exchange: order (p[i], p[j]) so p[i] <= p[j].
    fn swap(p: &mut [Expr], i: usize, j: usize) {
        let lo = p[i].clone().min(p[j].clone());
        let hi = p[i].clone().max(p[j].clone());
        p[i] = lo;
        p[j] = hi;
    }
    // Paeth's 19-exchange 9-element median network: after these exchanges,
    // p[4] holds the median.
    for &(i, j) in &[
        (1usize, 2usize),
        (4, 5),
        (7, 8),
        (0, 1),
        (3, 4),
        (6, 7),
        (1, 2),
        (4, 5),
        (7, 8),
        (0, 3),
        (5, 8),
        (4, 7),
        (3, 6),
        (1, 4),
        (2, 5),
        (4, 7),
        (4, 2),
        (6, 4),
        (4, 2),
    ] {
        swap(&mut p, i, j);
    }
    KernelSpec::new("median3", 1, vec![], p[4].clone())
}

/// Single-stage median pipeline.
pub fn pipeline() -> Pipeline {
    Pipeline::new("median", vec![Stage::from_source(spec())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{BorderSpec, Image, ImageGenerator};

    /// Host-side ground truth by actual sorting.
    fn median_sorted(img: &Image<f32>, x: usize, y: usize) -> f32 {
        let b = isp_image::BorderedImage::new(img, BorderSpec::clamp());
        let mut vals: Vec<f32> = (-1i64..=1)
            .flat_map(|dy| (-1i64..=1).map(move |dx| (dx, dy)))
            .map(|(dx, dy)| b.get_offset(x, y, dx, dy))
            .collect();
        vals.sort_by(f32::total_cmp);
        vals[4]
    }

    #[test]
    fn network_matches_sorting_median() {
        let img = ImageGenerator::new(77).uniform_noise::<f32>(32, 24);
        let out = pipeline().reference(&img, BorderSpec::clamp());
        for y in 0..24 {
            for x in 0..32 {
                let expect = median_sorted(&img, x, y);
                assert!(
                    (out.get(x, y) - expect).abs() < 1e-6,
                    "({x},{y}): network {} vs sorted {expect}",
                    out.get(x, y)
                );
            }
        }
    }

    #[test]
    fn removes_salt_and_pepper_noise() {
        let mut img = Image::<f32>::filled(32, 32, 0.5);
        img.set(10, 10, 1.0); // salt
        img.set(20, 20, 0.0); // pepper
        let out = pipeline().reference(&img, BorderSpec::clamp());
        assert!((out.get(10, 10) - 0.5).abs() < 1e-6);
        assert!((out.get(20, 20) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn median_is_idempotent_on_flat_regions() {
        let img = ImageGenerator::new(2).checkerboard::<f32>(32, 32, 8);
        let once = pipeline().reference(&img, BorderSpec::mirror());
        let twice = pipeline().reference(&once, BorderSpec::mirror());
        // Large flat cells stabilise after one pass except at cell corners.
        let diff = once.count_diff(&twice, 1e-6).unwrap();
        assert!(diff < 32 * 32 / 10, "mostly stable: {diff} pixels changed");
    }

    #[test]
    fn spec_shape() {
        let s = spec();
        assert_eq!(s.window(), (3, 3));
        assert_eq!(s.body.accesses().len(), 9);
        assert!(!s.is_point_op());
    }
}
