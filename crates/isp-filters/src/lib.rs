//! # isp-filters
//!
//! The five applications of the paper's evaluation (§VI), written in the
//! DSL exactly as a Hipacc user would write them:
//!
//! | App       | Kernels | Windows                | Notes                          |
//! |-----------|---------|------------------------|--------------------------------|
//! | Gaussian  | 1       | 3x3                    | cheap separable smoother       |
//! | Laplace   | 1       | 5x5                    | integer edge detector          |
//! | Bilateral | 1       | 13x13                  | expensive, data-dependent SFU  |
//! | Sobel     | 3       | 3x3, 3x3, point        | two derivatives + magnitude    |
//! | Night     | 5       | 3,5,9,17 (atrous) + pt | denoise pyramid + tone mapping |
//!
//! Every app exposes its [`isp_dsl::Pipeline`] plus golden-reference
//! helpers; [`apps::all_apps`] enumerates them for the bench harness.

pub mod apps;
pub mod bilateral;
pub mod gaussian;
pub mod laplace;
pub mod median;
pub mod morphology;
pub mod night;
pub mod sobel;

pub use apps::{all_apps, by_name, App};
