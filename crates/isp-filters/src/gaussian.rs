//! Gaussian smoothing filter (3x3 in the paper's evaluation).

use isp_dsl::pipeline::Stage;
use isp_dsl::{KernelSpec, Pipeline};
use isp_image::Mask;

/// The paper's evaluation window size.
pub const PAPER_WINDOW: usize = 3;

/// Default standard deviation for a given window (one third of the radius
/// rule of thumb, floored to keep tiny windows meaningful).
pub fn default_sigma(window: usize) -> f32 {
    ((window / 2) as f32 / 2.0).max(0.6)
}

/// The Gaussian mask used by the app.
pub fn mask(window: usize) -> Mask {
    Mask::gaussian(window, default_sigma(window)).expect("odd window")
}

/// Kernel spec for a `window x window` Gaussian.
pub fn spec(window: usize) -> KernelSpec {
    KernelSpec::convolution(format!("gaussian{window}"), &mask(window))
}

/// Single-stage pipeline with the paper's 3x3 window.
pub fn pipeline() -> Pipeline {
    Pipeline::new("gaussian", vec![Stage::from_source(spec(PAPER_WINDOW))])
}

/// Separable two-pass pipeline (horizontal 1D then vertical 1D) — the
/// classic rank-1 factorisation. Exercises asymmetric windows end to end:
/// the horizontal pass has no top/bottom border regions at all, the
/// vertical pass no left/right ones, so the partitioner produces 3-region
/// decompositions instead of 9.
pub fn separable_pipeline(window: usize) -> Pipeline {
    let (col, row) = mask(window).separate().expect("gaussians are separable");
    Pipeline::new(
        "gaussian_separable",
        vec![
            Stage::from_source(KernelSpec::convolution(format!("gaussh{window}"), &row)),
            Stage::from_stage(KernelSpec::convolution(format!("gaussv{window}"), &col), 0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{convolve, BorderSpec, ImageGenerator};

    #[test]
    fn pipeline_reference_equals_direct_convolution() {
        let img = ImageGenerator::new(3).natural::<f32>(48, 32);
        let p = pipeline();
        for border in [BorderSpec::clamp(), BorderSpec::repeat()] {
            let via_pipeline = p.reference(&img, border);
            let direct = convolve(&img, &mask(PAPER_WINDOW), border);
            assert!(via_pipeline.max_abs_diff(&direct).unwrap() < 1e-5);
        }
    }

    #[test]
    fn gaussian_smooths_noise() {
        let img = ImageGenerator::new(3).uniform_noise::<f32>(64, 64);
        let out = pipeline().reference(&img, BorderSpec::mirror());
        // Variance must drop substantially.
        let var = |i: &isp_image::Image<f32>| {
            let m = i.mean();
            i.pixels()
                .map(|(_, _, v)| (v as f64 - m).powi(2))
                .sum::<f64>()
                / i.len() as f64
        };
        assert!(var(&out) < 0.5 * var(&img));
        // Mean is preserved (mask sums to 1).
        assert!((out.mean() - img.mean()).abs() < 0.01);
    }

    #[test]
    fn separable_pipeline_matches_2d_interior() {
        let img = ImageGenerator::new(6).uniform_noise::<f32>(48, 40);
        let border = BorderSpec::clamp();
        let two_d = pipeline().reference(&img, border);
        let sep = separable_pipeline(PAPER_WINDOW).reference(&img, border);
        let r = PAPER_WINDOW / 2 + 1;
        let roi = isp_image::Roi::new(r, r, 48 - 2 * r, 40 - 2 * r);
        let a = two_d.crop(roi).unwrap();
        let b = sep.crop(roi).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn separable_stages_have_one_dimensional_windows() {
        let p = separable_pipeline(5);
        assert_eq!(p.stages[0].spec.window(), (5, 1));
        assert_eq!(p.stages[1].spec.window(), (1, 5));
    }

    #[test]
    fn window_sizes_produce_expected_radii() {
        assert_eq!(spec(3).window(), (3, 3));
        assert_eq!(spec(5).window(), (5, 5));
        assert_eq!(spec(7).radii(), (3, 3));
    }
}
