//! Sobel edge detector — the paper's 3-kernel pipeline: x-derivative,
//! y-derivative (both 3x3 local operators), and a gradient-magnitude point
//! operator. The paper notes this multi-kernel structure of cheap kernels is
//! where ISP shines (speedups above 4x on the RTX2080-class device).

use isp_dsl::pipeline::{Stage, StageInput};
use isp_dsl::{Expr, KernelSpec, Pipeline};
use isp_image::Mask;

/// The x-derivative kernel.
pub fn spec_dx() -> KernelSpec {
    KernelSpec::convolution("sobel_dx", &Mask::sobel_x())
}

/// The y-derivative kernel.
pub fn spec_dy() -> KernelSpec {
    KernelSpec::convolution("sobel_dy", &Mask::sobel_y())
}

/// The magnitude point operator: `sqrt(dx^2 + dy^2)`.
pub fn spec_magnitude() -> KernelSpec {
    let dx = Expr::input_at(0, 0, 0);
    let dy = Expr::input_at(1, 0, 0);
    KernelSpec::new(
        "sobel_mag",
        2,
        vec![],
        (dx.clone() * dx + dy.clone() * dy).sqrt(),
    )
}

/// The full 3-kernel pipeline.
pub fn pipeline() -> Pipeline {
    Pipeline::new(
        "sobel",
        vec![
            Stage::from_source(spec_dx()),
            Stage::from_source(spec_dy()),
            Stage {
                spec: spec_magnitude(),
                inputs: vec![StageInput::Stage(0), StageInput::Stage(1)],
                user_params: vec![],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{BorderSpec, Image, ImageGenerator};

    #[test]
    fn flat_image_has_zero_magnitude() {
        let img = Image::<f32>::filled(24, 24, 0.5);
        let out = pipeline().reference(&img, BorderSpec::clamp());
        let (_, hi) = out.min_max();
        assert!(hi < 1e-5);
    }

    #[test]
    fn vertical_edge_detected_by_dx_only() {
        let img = Image::<f32>::from_fn(32, 32, |x, _| if x < 16 { 0.0 } else { 1.0 });
        let border = BorderSpec::clamp();
        let dx = Pipeline::new("dx", vec![Stage::from_source(spec_dx())]).reference(&img, border);
        let dy = Pipeline::new("dy", vec![Stage::from_source(spec_dy())]).reference(&img, border);
        // dx responds at the edge columns, dy nowhere.
        assert!(dx.get(15, 16).abs() > 1.0 || dx.get(16, 16).abs() > 1.0);
        let (dlo, dhi) = dy.min_max();
        assert!(dlo.abs() < 1e-5 && dhi.abs() < 1e-5);
    }

    #[test]
    fn magnitude_is_rotation_symmetric_for_diagonals() {
        // Gradient of a 45-degree ramp has equal dx and dy contributions.
        let img = Image::<f32>::from_fn(32, 32, |x, y| (x + y) as f32 / 64.0);
        let out = pipeline().reference(&img, BorderSpec::mirror());
        // Interior gradient magnitude: |dx| = |dy| = 8/64 -> sqrt(2)*0.125.
        let expect = (2.0f32).sqrt() * 8.0 / 64.0;
        assert!(
            (out.get(16, 16) - expect).abs() < 1e-4,
            "{}",
            out.get(16, 16)
        );
    }

    #[test]
    fn pipeline_shape() {
        let p = pipeline();
        assert_eq!(p.stages.len(), 3);
        assert!(p.stages[2].spec.is_point_op());
        assert_eq!(p.stages[0].spec.window(), (3, 3));
        // Sobel masks have 6 non-zero cells each.
        assert_eq!(p.stages[0].spec.body.accesses().len(), 6);
    }

    #[test]
    fn finds_edges_on_shapes() {
        let img = ImageGenerator::new(7).shapes::<f32>(64, 64);
        let out = pipeline().reference(&img, BorderSpec::clamp());
        // There are edges somewhere.
        let (_, hi) = out.min_max();
        assert!(hi > 0.5);
        // Flat background has none.
        assert!(out.get(60, 3) < 1e-4);
    }
}
