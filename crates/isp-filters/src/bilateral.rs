//! Bilateral filter — the paper's motivating example (§IV-A): an
//! edge-preserving smoother combining a precomputed spatial closeness
//! component with a per-pixel intensity similarity component (`expf` on the
//! GPU's special function units).

use isp_dsl::pipeline::Stage;
use isp_dsl::{Expr, KernelSpec, Pipeline};
use isp_image::Mask;

/// The paper's evaluation window size.
pub const PAPER_WINDOW: usize = 13;

/// Default spatial sigma for a window (radius/2).
pub fn default_sigma_d(window: usize) -> f32 {
    ((window / 2) as f32 / 2.0).max(0.8)
}

/// Default range sigma (images normalised to the unit interval).
pub const DEFAULT_SIGMA_R: f32 = 0.15;

/// Build the bilateral kernel spec.
///
/// Output = `sum(w_s * w_r * I) / sum(w_s * w_r)` with
/// `w_r = exp(-(I(dx,dy) - I(0,0))^2 * inv_two_sigma_r_sq)`. The range
/// parameter enters as one runtime scalar (`user_params[0] =
/// 1 / (2 sigma_r^2)`), exactly like the Hipacc kernel in the paper's
/// Listing 4 passes `sigma_r`.
pub fn spec(window: usize) -> KernelSpec {
    let spatial = Mask::gaussian(window, default_sigma_d(window)).expect("odd window");
    let centre = Expr::at(0, 0);
    // Fused two-accumulator reduction: per tap, `num += w*p; den += w;` —
    // exactly the loop body a CUDA author (or Hipacc's iterate) emits.
    let mut taps = Vec::new();
    for (dx, dy) in spatial.domain().iter_offsets() {
        let pixel = Expr::at(dx, dy);
        let diff = pixel.clone() - centre.clone();
        let w_range = (-(diff.clone() * diff) * Expr::param(0)).exp();
        let w = Expr::Const(spatial.coeff_at(dx, dy)) * w_range;
        taps.push(vec![w.clone() * pixel, w]);
    }
    let body = Expr::fused_reduce(taps, Expr::Acc(0) / Expr::Acc(1));
    KernelSpec::new(
        format!("bilateral{window}"),
        1,
        vec!["inv_two_sigma_r_sq".into()],
        body,
    )
}

/// The runtime parameter value for a given range sigma.
pub fn range_param(sigma_r: f32) -> f32 {
    1.0 / (2.0 * sigma_r * sigma_r)
}

/// Single-stage pipeline with the paper's 13x13 window and default sigmas.
pub fn pipeline() -> Pipeline {
    pipeline_with(PAPER_WINDOW, DEFAULT_SIGMA_R)
}

/// Pipeline with explicit window and range sigma.
pub fn pipeline_with(window: usize, sigma_r: f32) -> Pipeline {
    Pipeline::new(
        "bilateral",
        vec![Stage {
            spec: spec(window),
            inputs: vec![isp_dsl::pipeline::StageInput::Source],
            user_params: vec![range_param(sigma_r)],
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{bilateral_reference, BorderSpec, Image, ImageGenerator};

    #[test]
    fn matches_independent_reference_implementation() {
        // The DSL spec against isp-image's hand-written bilateral.
        let img = ImageGenerator::new(17).natural::<f32>(32, 24);
        let window = 5;
        let sigma_r = 0.2;
        let p = pipeline_with(window, sigma_r);
        let ours = p.reference(&img, BorderSpec::clamp());
        let theirs = bilateral_reference(
            &img,
            window,
            default_sigma_d(window),
            sigma_r,
            BorderSpec::clamp(),
        );
        let d = ours.max_abs_diff(&theirs).unwrap();
        assert!(d < 1e-4, "max diff {d}");
    }

    #[test]
    fn preserves_constant_images() {
        let img = Image::<f32>::filled(24, 24, 0.42);
        let out = pipeline_with(7, 0.1).reference(&img, BorderSpec::mirror());
        assert!(out.max_abs_diff(&img).unwrap() < 1e-5);
    }

    #[test]
    fn preserves_step_edges_better_than_gaussian() {
        let img = Image::<f32>::from_fn(32, 32, |x, _| if x < 16 { 0.0 } else { 1.0 });
        let bil = pipeline_with(9, 0.05).reference(&img, BorderSpec::clamp());
        let gau = crate::gaussian::pipeline().reference(&img, BorderSpec::clamp());
        let edge = |i: &Image<f32>| (i.get(15, 16) - i.get(16, 16)).abs();
        assert!(edge(&bil) > edge(&gau));
        assert!(edge(&bil) > 0.9, "bilateral keeps the step sharp");
    }

    #[test]
    fn window_and_params() {
        let s = spec(13);
        assert_eq!(s.window(), (13, 13));
        assert_eq!(s.user_params.len(), 1);
        assert_eq!(s.body.accesses().len(), 169);
        assert!((range_param(0.5) - 2.0).abs() < 1e-6);
    }
}
