//! Fold/interpreter equivalence: every rewrite the optimiser's constant
//! folder performs must be **bit-identical** to the interpreter's op
//! semantics (`isp_sim::interp::eval_*`, which the decoded engine reuses).
//! Differential property tests drive both sides with adversarial bit
//! patterns — NaN payloads, signalling NaNs, −0.0, infinities, denormals,
//! `i32::MIN`, shift amounts ≥ 32, division by zero — and the fast-math
//! tests document exactly which rewrites are excluded from the default set
//! and why.

use isp_ir::instr::{BinOp, CmpOp, Operand, UnOp};
use isp_ir::opt::{fold_bin, fold_cmp, fold_un, simplify_bin};
use isp_ir::Ty;
use isp_sim::interp::{eval_bin_f, eval_bin_i, eval_cmp_f, eval_cmp_i, eval_un_f, eval_un_i};
use proptest::prelude::*;

const BIN_OPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Min,
    BinOp::Max,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
];

const F32_BIN_OPS: [BinOp; 7] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Min,
    BinOp::Max,
];

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

/// Adversarial integers: identity/absorbing elements, wrapping boundaries,
/// and shift amounts straddling the 5-bit mask.
const I32_SPECIALS: [i32; 16] = [
    0,
    1,
    -1,
    2,
    -2,
    4,
    8,
    31,
    32,
    33,
    63,
    -31,
    -32,
    i32::MIN,
    i32::MIN + 1,
    i32::MAX,
];

/// Adversarial float bit patterns: ±0.0, ±1.0, ±inf, quiet and signalling
/// NaNs (with payloads), a denormal, and boundary magnitudes.
const F32_SPECIAL_BITS: [u32; 14] = [
    0x0000_0000, // +0.0
    0x8000_0000, // -0.0
    0x3F80_0000, // 1.0
    0xBF80_0000, // -1.0
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x7FC0_0000, // canonical quiet NaN
    0x7FC0_0001, // quiet NaN with payload
    0xFFC0_0001, // negative quiet NaN with payload
    0x7F80_0001, // signalling NaN
    0xFF80_0001, // negative signalling NaN
    0x0000_0001, // smallest denormal
    0x7F7F_FFFF, // f32::MAX
    0x3EAA_AAAB, // ~1/3 (inexact arithmetic)
];

/// Mix special values with uniform random ones: index below the table picks
/// a special, otherwise the raw draw is used.
fn arb_i32() -> impl Strategy<Value = i32> {
    (0u32..64, i32::MIN..=i32::MAX)
        .prop_map(|(sel, raw)| I32_SPECIALS.get(sel as usize).copied().unwrap_or(raw))
}

/// Float operands are drawn as raw bit patterns (the shim's float ranges
/// can never produce NaN or inf) and transmuted, so every NaN payload and
/// sign combination is exercised.
fn arb_f32_bits() -> impl Strategy<Value = u32> {
    (0u32..42, 0u32..=u32::MAX)
        .prop_map(|(sel, raw)| F32_SPECIAL_BITS.get(sel as usize).copied().unwrap_or(raw))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `fold_bin` on S32 is total over immediates and bit-identical to
    /// `eval_bin_i` for every op — wrapping arithmetic, div/rem-by-zero = 0,
    /// and shift amounts masked to 5 bits exactly as the hardware does.
    #[test]
    fn fold_bin_s32_matches_interpreter(x in arb_i32(), y in arb_i32()) {
        for op in BIN_OPS {
            let folded = fold_bin(op, Ty::S32, &Operand::ImmI(x), &Operand::ImmI(y));
            prop_assert_eq!(
                folded,
                Some(Operand::ImmI(eval_bin_i(op, x, y))),
                "{:?} {} {}", op, x, y
            );
        }
    }

    /// `fold_bin` on F32 performs the *same computation* as `eval_bin_f`,
    /// so the result is bit-identical even for NaN payloads, −0.0 and inf.
    #[test]
    fn fold_bin_f32_matches_interpreter(xb in arb_f32_bits(), yb in arb_f32_bits()) {
        let (x, y) = (f32::from_bits(xb), f32::from_bits(yb));
        for op in F32_BIN_OPS {
            let folded = fold_bin(op, Ty::F32, &Operand::ImmF(x), &Operand::ImmF(y));
            let expect = eval_bin_f(op, x, y);
            match folded {
                Some(Operand::ImmF(got)) => prop_assert_eq!(
                    got.to_bits(),
                    expect.to_bits(),
                    "{:?} {:#010x} {:#010x}: folded {:e}, interpreter {:e}",
                    op, xb, yb, got, expect
                ),
                other => prop_assert!(false, "{:?} must fold immediates, got {:?}", op, other),
            }
        }
    }

    /// `fold_un` matches `eval_un_i`/`eval_un_f` bit-for-bit, including
    /// `i32::MIN.wrapping_abs()` and NaN propagation through sqrt/log.
    #[test]
    fn fold_un_matches_interpreter(x in arb_i32(), fb in arb_f32_bits()) {
        for op in [UnOp::Neg, UnOp::Abs, UnOp::Not] {
            prop_assert_eq!(
                fold_un(op, Ty::S32, &Operand::ImmI(x)),
                Some(Operand::ImmI(eval_un_i(op, x))),
                "{:?} {}", op, x
            );
        }
        let f = f32::from_bits(fb);
        for op in [UnOp::Neg, UnOp::Abs, UnOp::Exp, UnOp::Log, UnOp::Sqrt, UnOp::Rsqrt, UnOp::Floor] {
            match fold_un(op, Ty::F32, &Operand::ImmF(f)) {
                Some(Operand::ImmF(got)) => prop_assert_eq!(
                    got.to_bits(),
                    eval_un_f(op, f).to_bits(),
                    "{:?} {:#010x}", op, fb
                ),
                other => prop_assert!(false, "{:?} must fold, got {:?}", op, other),
            }
        }
    }

    /// `fold_cmp` agrees with the interpreter whenever it folds, and it
    /// *refuses* to fold unordered (NaN) float comparisons — those keep
    /// their IEEE semantics (`Ne` true, everything else false) by staying
    /// in the instruction stream.
    #[test]
    fn fold_cmp_matches_interpreter(
        x in arb_i32(),
        y in arb_i32(),
        xb in arb_f32_bits(),
        yb in arb_f32_bits(),
    ) {
        for cmp in CMP_OPS {
            prop_assert_eq!(
                fold_cmp(cmp, &Operand::ImmI(x), &Operand::ImmI(y)),
                Some(eval_cmp_i(cmp, x, y)),
                "{:?} {} {}", cmp, x, y
            );
            let (fx, fy) = (f32::from_bits(xb), f32::from_bits(yb));
            let folded = fold_cmp(cmp, &Operand::ImmF(fx), &Operand::ImmF(fy));
            if fx.is_nan() || fy.is_nan() {
                prop_assert_eq!(folded, None, "{:?}: NaN compares must not fold", cmp);
            } else {
                prop_assert_eq!(
                    folded,
                    Some(eval_cmp_f(cmp, fx, fy)),
                    "{:?} {:e} {:e}", cmp, fx, fy
                );
            }
        }
    }

    /// Every rewrite `simplify_bin` performs **in the default set**
    /// (`fast_math = false`) is bit-identical to executing the instruction:
    /// substituting the returned operand gives exactly the interpreter's
    /// result. Integer identities are exact under wrapping semantics; no
    /// F32 identity is in the default set at all.
    #[test]
    fn simplify_bin_default_set_is_exact(x in arb_i32(), y in arb_i32()) {
        for op in BIN_OPS {
            let (a, b) = (Operand::ImmI(x), Operand::ImmI(y));
            if let Some(r) = simplify_bin(op, Ty::S32, &a, &b, false) {
                let got = match r {
                    Operand::ImmI(v) => v,
                    other => panic!("s32 simplification produced {other:?}"),
                };
                prop_assert_eq!(
                    got,
                    eval_bin_i(op, x, y),
                    "{:?} {} {} -> {:?} diverges from interpreter", op, x, y, r
                );
            }
        }
    }

    /// With `fast_math = false`, `simplify_bin` never rewrites an F32
    /// operation — x+0.0, x*1.0, x*0.0, min(x,x) all stay in the stream
    /// because each can be observed bit-wise (−0.0, NaN, sNaN quieting).
    #[test]
    fn simplify_bin_f32_disabled_by_default(xb in arb_f32_bits(), yb in arb_f32_bits()) {
        let (a, b) = (Operand::ImmF(f32::from_bits(xb)), Operand::ImmF(f32::from_bits(yb)));
        for op in F32_BIN_OPS {
            prop_assert_eq!(
                simplify_bin(op, Ty::F32, &a, &b, false),
                None,
                "{:?} {:#010x} {:#010x}: F32 identities require fast_math", op, xb, yb
            );
        }
    }
}

/// The documented fast-math exceptions: each of these rewrites diverges
/// bit-wise from the interpreter on some input, which is exactly why they
/// are gated behind `OptConfig::fast_math` instead of shipping by default.
#[test]
fn fast_math_set_diverges_where_documented() {
    let nan = f32::from_bits(0x7FC0_0001);

    // x * 0.0 → 0.0 loses NaN: the interpreter computes NaN * 0.0 = NaN.
    let r = simplify_bin(
        BinOp::Mul,
        Ty::F32,
        &Operand::ImmF(nan),
        &Operand::ImmF(0.0),
        true,
    );
    assert_eq!(r, Some(Operand::ImmF(0.0)));
    assert!(eval_bin_f(BinOp::Mul, nan, 0.0).is_nan());

    // x * 0.0 → 0.0 also loses the sign: -1.0 * 0.0 is -0.0.
    assert_eq!(
        eval_bin_f(BinOp::Mul, -1.0, 0.0).to_bits(),
        (-0.0f32).to_bits()
    );

    // x + 0.0 → x keeps -0.0 where the interpreter normalises to +0.0.
    let r = simplify_bin(
        BinOp::Add,
        Ty::F32,
        &Operand::ImmF(0.0),
        &Operand::ImmF(-0.0),
        true,
    );
    assert_eq!(
        r,
        Some(Operand::ImmF(-0.0)),
        "rewrite forwards the non-zero operand"
    );
    assert_eq!(
        eval_bin_f(BinOp::Add, 0.0, -0.0).to_bits(),
        0.0f32.to_bits(),
        "interpreter adds to +0.0"
    );

    // min(x, x) → x skips the arithmetic that would quiet a signalling NaN.
    let snan = f32::from_bits(0x7F80_0001);
    let r = simplify_bin(
        BinOp::Min,
        Ty::F32,
        &Operand::ImmF(snan),
        &Operand::ImmF(snan),
        true,
    );
    assert!(matches!(r, Some(Operand::ImmF(f)) if f.to_bits() == snan.to_bits()));

    // None of these rewrites fire without the flag.
    for (op, a, b) in [
        (BinOp::Mul, nan, 0.0),
        (BinOp::Add, 0.0, -0.0),
        (BinOp::Min, snan, snan),
    ] {
        assert_eq!(
            simplify_bin(op, Ty::F32, &Operand::ImmF(a), &Operand::ImmF(b), false),
            None
        );
    }
}

/// Shift-amount masking pinned explicitly: `x << 32` is `x` (not 0) on the
/// simulated hardware, and the folder agrees.
#[test]
fn shift_masking_is_bit_identical() {
    for amount in [32, 33, 63, -1, -32, 64] {
        for x in [1i32, -1, i32::MIN, 0x55AA_55AA] {
            for op in [BinOp::Shl, BinOp::Shr] {
                assert_eq!(
                    fold_bin(op, Ty::S32, &Operand::ImmI(x), &Operand::ImmI(amount)),
                    Some(Operand::ImmI(eval_bin_i(op, x, amount))),
                    "{op:?} {x} by {amount}"
                );
            }
        }
    }
    // The concrete masking facts the equivalence rests on.
    assert_eq!(eval_bin_i(BinOp::Shl, 7, 32), 7);
    assert_eq!(eval_bin_i(BinOp::Shr, -8, 33), -4);
}

/// Division edge cases pinned explicitly: div/rem by zero are 0 (the
/// simulator's defined semantics), and `i32::MIN / -1` wraps instead of
/// trapping.
#[test]
fn division_edge_cases_are_bit_identical() {
    for (x, y) in [(5, 0), (-5, 0), (0, 0), (i32::MIN, -1), (i32::MIN, 1)] {
        for op in [BinOp::Div, BinOp::Rem] {
            assert_eq!(
                fold_bin(op, Ty::S32, &Operand::ImmI(x), &Operand::ImmI(y)),
                Some(Operand::ImmI(eval_bin_i(op, x, y))),
                "{op:?} {x} / {y}"
            );
        }
    }
    assert_eq!(eval_bin_i(BinOp::Div, 5, 0), 0);
    assert_eq!(eval_bin_i(BinOp::Div, i32::MIN, -1), i32::MIN);
}
