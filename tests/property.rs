//! Property-based cross-crate tests: randomised kernels, images, and
//! geometries, checking the repo's central invariants end-to-end.

use isp_core::bounds::Geometry;
use isp_core::{region_of_block, IndexBounds, Region, Variant};
use isp_dsl::runner::{run_filter, ExecMode};
use isp_dsl::{Compiler, KernelSpec};
use isp_image::{BorderPattern, BorderSpec, ImageGenerator, Mask};
use isp_sim::{DeviceSpec, Gpu};
use proptest::prelude::*;

/// A random odd-sized mask with random coefficients.
fn arb_mask() -> impl Strategy<Value = Mask> {
    (0usize..3, proptest::collection::vec(-2.0f32..2.0, 49)).prop_map(|(half, coeffs)| {
        let size = 2 * half + 1;
        // Guarantee at least one non-zero coefficient (the centre).
        let mut c: Vec<f32> = coeffs[..size * size].to_vec();
        if c.iter().all(|&v| v == 0.0) {
            c[size * size / 2] = 1.0;
        }
        Mask::from_coeffs(size, size, c).expect("odd dims")
    })
}

fn arb_pattern() -> impl Strategy<Value = BorderPattern> {
    (0usize..4).prop_map(|i| BorderPattern::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE invariant: for any convolution mask, pattern, and image, the
    /// naive and ISP variants produce the reference pixels.
    #[test]
    fn random_convolutions_match_reference(
        mask in arb_mask(),
        pattern in arb_pattern(),
        seed in 0u64..1000,
        w in 48usize..120,
        h in 40usize..100,
    ) {
        let spec = KernelSpec::convolution("prop", &mask);
        let img = ImageGenerator::new(seed).uniform_noise::<f32>(w, h);
        let border = BorderSpec { pattern, constant: 0.33 };
        let golden = isp_dsl::eval::reference_run(&spec, &[&img], border, &[]);
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
        let gpu = Gpu::new(DeviceSpec::gtx680());
        for variant in [Variant::Naive, Variant::IspBlock] {
            let run = run_filter(&gpu, &ck, variant, &[&img], &[], 0.33, (32, 4), ExecMode::Exhaustive);
            let Ok(out) = run else {
                // ISP may legitimately refuse degenerate partitions.
                prop_assert!(variant.is_isp());
                continue;
            };
            let diff = out.image.unwrap().max_abs_diff(&golden).unwrap();
            // Accumulation order differs (fused taps vs reference): allow a
            // small float tolerance scaled by coefficient magnitudes.
            prop_assert!(diff < 3e-3, "{pattern}/{variant}: diff {diff}");
        }
    }

    /// Region classification invariants for random geometries: the block
    /// classifier covers the grid with counts matching Eq. 8, and a region's
    /// checks match the block's actual boundary exposure.
    #[test]
    fn region_partition_is_exact(
        sx in 64usize..3000,
        sy in 64usize..3000,
        half_m in 0usize..10,
        tx_pow in 5u32..8,
        ty in 1u32..8,
    ) {
        let m = 2 * half_m + 1;
        let g = Geometry { sx, sy, m, n: m, tx: 1 << tx_pow, ty };
        let b = IndexBounds::new(&g);
        prop_assume!(b.is_valid());
        let counts = b.block_counts();
        let mut seen = [0u64; 9];
        for by in 0..b.grid.1 {
            for bx in 0..b.grid.0 {
                seen[region_of_block(bx, by, &b).index()] += 1;
            }
        }
        for r in Region::ALL {
            prop_assert_eq!(seen[r.index()], counts.get(r), "{}", r);
        }
    }

    /// Sampled and exhaustive launches agree on instruction counters for
    /// random small geometries (sampling losslessness).
    #[test]
    fn sampling_is_lossless(
        seed in 0u64..100,
        w_blocks in 3usize..7,
        h_blocks in 3usize..9,
        pattern in arb_pattern(),
    ) {
        let (w, h) = (w_blocks * 32, h_blocks * 4);
        let spec = KernelSpec::convolution("s", &Mask::gaussian(3, 0.8).unwrap());
        let img = ImageGenerator::new(seed).uniform_noise::<f32>(w, h);
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
        let gpu = Gpu::new(DeviceSpec::gtx680());
        for variant in [Variant::Naive, Variant::IspBlock] {
            let ex = run_filter(&gpu, &ck, variant, &[&img], &[], 0.0, (32, 4), ExecMode::Exhaustive).unwrap();
            let sa = run_filter(&gpu, &ck, variant, &[&img], &[], 0.0, (32, 4), ExecMode::Sampled).unwrap();
            prop_assert_eq!(
                ex.report.counters.warp_instructions,
                sa.report.counters.warp_instructions,
                "{}", variant
            );
            prop_assert_eq!(&ex.report.counters.histogram, &sa.report.counters.histogram);
        }
    }

    /// The ISP fat kernel never uses fewer registers than the naive kernel,
    /// and the Body region path never exceeds the naive path cost.
    #[test]
    fn fat_kernel_structural_invariants(
        mask in arb_mask(),
        pattern in arb_pattern(),
    ) {
        prop_assume!(mask.width() > 1);
        let spec = KernelSpec::convolution("inv", &mask);
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
        let isp = ck.isp.as_ref().unwrap();
        prop_assert!(isp.regs.data_regs >= ck.naive.regs.data_regs);
        let hists = isp.region_histograms.as_ref().unwrap();
        let body = &hists.iter().find(|(r, _)| *r == Region::Body).unwrap().1;
        prop_assert!(
            body.arithmetic_total() <= ck.naive.static_histogram.arithmetic_total(),
            "body {} vs naive {}",
            body.arithmetic_total(),
            ck.naive.static_histogram.arithmetic_total()
        );
    }
}
