//! Cross-crate correctness: every application, every border pattern, every
//! compiled variant — simulated GPU pixels must equal the host reference
//! bit-for-bit (within float tolerance).

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_image::{BorderPattern, BorderSpec, ImageGenerator};
use isp_sim::{DeviceSpec, Gpu};

/// Run one app under one policy and compare against the reference.
fn check_app(app: &isp_filters::App, pattern: BorderPattern, policy: Policy, size: usize) {
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let border = BorderSpec {
        pattern,
        constant: 0.25,
    };
    let source = ImageGenerator::new(1234).natural::<f32>(size, size);
    let golden = app.pipeline.reference(&source, border);
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let run = app
        .pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            policy,
            ExecMode::Exhaustive,
        )
        .unwrap_or_else(|e| panic!("{} {pattern} {policy:?}: {e}", app.name));
    let out = run.image.expect("exhaustive run produces pixels");
    let diff = out.max_abs_diff(&golden).unwrap();
    assert!(
        diff < 2e-4,
        "{} {pattern} {policy:?}: max |diff| = {diff}",
        app.name
    );
}

#[test]
fn gaussian_all_patterns_all_policies() {
    let app = isp_filters::by_name("gaussian").unwrap();
    for pattern in BorderPattern::ALL {
        for policy in [
            Policy::Naive,
            Policy::AlwaysIsp(Variant::IspBlock),
            Policy::Model(Variant::IspBlock),
        ] {
            check_app(&app, pattern, policy, 96);
        }
    }
}

#[test]
fn laplace_all_patterns() {
    let app = isp_filters::by_name("laplace").unwrap();
    for pattern in BorderPattern::ALL {
        check_app(&app, pattern, Policy::AlwaysIsp(Variant::IspBlock), 96);
    }
}

#[test]
fn bilateral_all_patterns() {
    let app = isp_filters::by_name("bilateral").unwrap();
    for pattern in BorderPattern::ALL {
        check_app(&app, pattern, Policy::AlwaysIsp(Variant::IspBlock), 96);
    }
}

#[test]
fn sobel_all_patterns() {
    let app = isp_filters::by_name("sobel").unwrap();
    for pattern in BorderPattern::ALL {
        check_app(&app, pattern, Policy::Model(Variant::IspBlock), 96);
    }
}

#[test]
fn night_all_patterns() {
    // 17x17 atrous window: radius 8 needs a roomier image.
    let app = isp_filters::by_name("night").unwrap();
    for pattern in BorderPattern::ALL {
        check_app(&app, pattern, Policy::AlwaysIsp(Variant::IspBlock), 96);
    }
}

#[test]
fn warp_grained_variant_matches_reference() {
    // Warp granularity requires blocks wider than a warp.
    let gpu = Gpu::new(DeviceSpec::rtx2080());
    let spec = isp_filters::gaussian::spec(3);
    let source = ImageGenerator::new(77).natural::<f32>(384, 64);
    for pattern in BorderPattern::ALL {
        let border = BorderSpec {
            pattern,
            constant: 0.5,
        };
        let golden = isp_dsl::eval::reference_run(&spec, &[&source], border, &[]);
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspWarp);
        let out = isp_dsl::runner::run_filter(
            &gpu,
            &ck,
            Variant::IspWarp,
            &[&source],
            &[],
            0.5,
            (128, 1),
            ExecMode::Exhaustive,
        )
        .unwrap();
        let diff = out.image.unwrap().max_abs_diff(&golden).unwrap();
        assert!(diff < 1e-4, "{pattern}: {diff}");
    }
}

#[test]
fn both_devices_compute_identical_pixels() {
    // Timing differs between devices; pixels must not.
    let spec = isp_filters::laplace::spec(5);
    let source = ImageGenerator::new(9).natural::<f32>(96, 96);
    let ck = Compiler::new().compile(&spec, BorderPattern::Mirror, Variant::IspBlock);
    let mut images = Vec::new();
    for device in DeviceSpec::all() {
        let gpu = Gpu::new(device);
        let out = isp_dsl::runner::run_filter(
            &gpu,
            &ck,
            Variant::IspBlock,
            &[&source],
            &[],
            0.0,
            (32, 4),
            ExecMode::Exhaustive,
        )
        .unwrap();
        images.push(out.image.unwrap());
    }
    assert_eq!(images[0].max_abs_diff(&images[1]).unwrap(), 0.0);
}

#[test]
fn non_square_and_non_divisible_sizes() {
    // Ragged grids: the image-edge guard must mask overhanging threads.
    let spec = isp_filters::gaussian::spec(3);
    for (w, h) in [(97usize, 43usize), (130, 70), (64, 200)] {
        let source = ImageGenerator::new(5).uniform_noise::<f32>(w, h);
        let border = BorderSpec::repeat();
        let golden = isp_dsl::eval::reference_run(&spec, &[&source], border, &[]);
        let ck = Compiler::new().compile(&spec, border.pattern, Variant::IspBlock);
        let gpu = Gpu::new(DeviceSpec::gtx680());
        for variant in [Variant::Naive, Variant::IspBlock] {
            let out = isp_dsl::runner::run_filter(
                &gpu,
                &ck,
                variant,
                &[&source],
                &[],
                0.0,
                (32, 4),
                ExecMode::Exhaustive,
            );
            match out {
                Ok(res) => {
                    let diff = res.image.unwrap().max_abs_diff(&golden).unwrap();
                    assert!(diff < 1e-4, "{w}x{h} {variant}: {diff}");
                }
                Err(e) => {
                    // Degenerate partitions must be refused, not mis-run.
                    assert!(variant.is_isp(), "{w}x{h} {variant}: unexpected {e}");
                }
            }
        }
    }
}

#[test]
fn texture_variant_matches_reference() {
    // Hardware border handling must agree with the software reference for
    // the patterns whose texture address mode is semantically identical
    // (Clamp/Wrap/Border; CUDA's Mirror also matches our Mirror semantics).
    let gpu = Gpu::new(DeviceSpec::rtx2080());
    let spec = isp_filters::gaussian::spec(3);
    let source = ImageGenerator::new(31).natural::<f32>(96, 64);
    for pattern in BorderPattern::ALL {
        let border = BorderSpec {
            pattern,
            constant: 0.6,
        };
        let golden = isp_dsl::eval::reference_run(&spec, &[&source], border, &[]);
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
        let out = isp_dsl::runner::run_filter(
            &gpu,
            &ck,
            Variant::Texture,
            &[&source],
            &[],
            0.6,
            (32, 4),
            ExecMode::Exhaustive,
        )
        .unwrap();
        let diff = out.image.unwrap().max_abs_diff(&golden).unwrap();
        assert!(diff < 1e-4, "{pattern}: texture diff {diff}");
    }
}

#[test]
fn texture_variant_uses_no_border_arithmetic() {
    let spec = isp_filters::gaussian::spec(5);
    let ck = Compiler::new().compile(&spec, BorderPattern::Repeat, Variant::IspBlock);
    let tex = ck.texture.as_ref().unwrap();
    use isp_ir::InstrCategory;
    assert_eq!(tex.static_histogram.get(InstrCategory::Max), 0);
    assert_eq!(tex.static_histogram.get(InstrCategory::Min), 0);
    assert_eq!(tex.static_histogram.get(InstrCategory::Selp), 0);
    assert_eq!(
        tex.static_histogram.get(InstrCategory::Ld),
        0,
        "all reads go through tex"
    );
    assert!(tex.static_histogram.get(InstrCategory::Tex) > 0);
    // Fewer registers than even the naive software variant.
    assert!(tex.regs.data_regs <= ck.naive.regs.data_regs);
}

#[test]
fn separable_gaussian_runs_on_gpu_with_asymmetric_partitions() {
    // 1D windows produce 3-region partitions (no top/bottom borders for a
    // horizontal pass); the whole pipeline must still match the reference.
    let p = isp_filters::gaussian::separable_pipeline(5);
    let img = ImageGenerator::new(15).natural::<f32>(128, 96);
    let gpu = Gpu::new(DeviceSpec::gtx680());
    for pattern in BorderPattern::ALL {
        let border = BorderSpec {
            pattern,
            constant: 0.3,
        };
        let golden = p.reference(&img, border);
        let compiled = p.compile(&Compiler::new(), border, Variant::IspBlock);
        let run = p
            .run(
                &gpu,
                &compiled,
                &img,
                border,
                (32, 4),
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Exhaustive,
            )
            .unwrap();
        let diff = run.image.unwrap().max_abs_diff(&golden).unwrap();
        assert!(diff < 1e-4, "{pattern}: separable diff {diff}");
        assert!(run.stage_variants.iter().all(|v| v.is_isp()));
    }
}

#[test]
fn morphology_pipelines_run_on_gpu() {
    let gpu = Gpu::new(DeviceSpec::rtx2080());
    let img = ImageGenerator::new(23).natural::<f32>(96, 96);
    for (name, p) in [
        ("opening", isp_filters::morphology::opening(3)),
        ("closing", isp_filters::morphology::closing(3)),
        ("gradient", isp_filters::morphology::gradient(3)),
    ] {
        let border = BorderSpec::clamp();
        let golden = p.reference(&img, border);
        let compiled = p.compile(&Compiler::new(), border, Variant::IspBlock);
        let run = p
            .run(
                &gpu,
                &compiled,
                &img,
                border,
                (32, 4),
                Policy::Model(Variant::IspBlock),
                ExecMode::Exhaustive,
            )
            .unwrap();
        let diff = run.image.unwrap().max_abs_diff(&golden).unwrap();
        assert!(diff < 1e-5, "{name}: diff {diff}");
    }
}

#[test]
fn simulator_catches_missing_border_handling() {
    // The paper's motivating hazard, made concrete: a stencil kernel
    // compiled WITHOUT border handling reads outside the allocation, and
    // the simulator reports exactly which thread did it.
    use isp_sim::launch::{LaunchConfig, SimMode};
    use isp_sim::{DeviceBuffer, ParamValue, SimError};

    let spec = isp_filters::gaussian::spec(3);
    let lowered = isp_dsl::lower::lower_unchecked(&spec);
    let kernel = isp_ir::opt::optimize(&lowered.kernel, isp_ir::opt::OptConfig::full());
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let (w, h) = (64usize, 32usize);
    let mut buffers = vec![DeviceBuffer::zeroed(w * h), DeviceBuffer::zeroed(w * h)];
    let err = gpu
        .launch(
            &kernel,
            LaunchConfig::for_image(w, h, (32, 4)),
            &[
                ParamValue::I32(w as i32),
                ParamValue::I32(h as i32),
                ParamValue::I32(w as i32),
            ],
            &mut buffers,
            SimMode::Exhaustive,
        )
        .unwrap_err();
    match err {
        SimError::OutOfBounds { addr, block, .. } => {
            assert!(addr < 0, "first OOB is a top-left read, got addr {addr}");
            assert_eq!(block, (0, 0), "the top-left block trips first");
        }
        other => panic!("expected an out-of-bounds report, got {other}"),
    }
}

#[test]
fn tiled_variant_matches_reference_all_patterns() {
    // Shared-memory tiling: staging + barrier + compute-from-scratchpad
    // must reproduce the reference pixels for every pattern, including
    // ragged (non-divisible) image sizes.
    let gpu = Gpu::new(DeviceSpec::gtx680());
    for (w, h) in [(96usize, 64usize), (100, 52)] {
        let img = ImageGenerator::new(41).natural::<f32>(w, h);
        for (name, spec, user) in [
            ("gauss3", isp_filters::gaussian::spec(3), vec![]),
            (
                "bilateral5",
                isp_filters::bilateral::spec(5),
                vec![isp_filters::bilateral::range_param(0.2)],
            ),
        ] {
            for pattern in BorderPattern::ALL {
                let border = BorderSpec {
                    pattern,
                    constant: 0.35,
                };
                let golden = isp_dsl::eval::reference_run(&spec, &[&img], border, &user);
                let tiled = Compiler::new().compile_tiled(&spec, pattern, (32, 4));
                let out = isp_dsl::runner::run_compiled(
                    &gpu,
                    &tiled,
                    &[&img],
                    &user,
                    0.35,
                    (32, 4),
                    ExecMode::Exhaustive,
                )
                .unwrap_or_else(|e| panic!("{name} {pattern} {w}x{h}: {e}"));
                let diff = out.image.unwrap().max_abs_diff(&golden).unwrap();
                assert!(diff < 1e-4, "{name} {pattern} {w}x{h}: diff {diff}");
            }
        }
    }
}

#[test]
fn tiling_slashes_global_loads() {
    // The point of tiling: global loads drop from taps-per-thread to
    // roughly one per staged tile element.
    use isp_ir::InstrCategory;
    let spec = isp_filters::gaussian::spec(5);
    let img = ImageGenerator::new(4).natural::<f32>(128, 64);
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
    let flat = isp_dsl::runner::run_filter(
        &gpu,
        &ck,
        Variant::Naive,
        &[&img],
        &[],
        0.0,
        (32, 4),
        ExecMode::Exhaustive,
    )
    .unwrap();
    let tiled_cv = Compiler::new().compile_tiled(&spec, BorderPattern::Clamp, (32, 4));
    assert_eq!(tiled_cv.kernel.shared_elems, 36 * 8, "(32+4)x(4+4) tile");
    let tiled = isp_dsl::runner::run_compiled(
        &gpu,
        &tiled_cv,
        &[&img],
        &[],
        0.0,
        (32, 4),
        ExecMode::Exhaustive,
    )
    .unwrap();
    let flat_lds = flat.report.counters.count(InstrCategory::Ld);
    let tiled_lds = tiled.report.counters.count(InstrCategory::Ld);
    assert!(
        tiled_lds * 3 < flat_lds,
        "tiling must cut global loads hard: {tiled_lds} vs {flat_lds}"
    );
    // And it uses shared memory + barriers.
    assert!(tiled.report.counters.count(InstrCategory::Shared) > 0);
    assert!(tiled.report.counters.count(InstrCategory::Bar2) > 0);
}
