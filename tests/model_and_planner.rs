//! End-to-end tests of the analytic model and the isp+m planner against the
//! simulator's measured behaviour.

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::{geometry_for, plan_for, ExecMode};
use isp_dsl::Compiler;
use isp_image::{BorderPattern, BorderSpec, ImageGenerator};
use isp_sim::{DeviceSpec, Gpu};

#[test]
fn planner_fallback_matches_naive_timing_exactly() {
    // When the model picks naive, the isp+m run must cost exactly what the
    // naive run costs (same kernel, same launch).
    let app = isp_filters::by_name("bilateral").unwrap();
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let border = BorderSpec::clamp();
    let source = ImageGenerator::new(3).natural::<f32>(512, 512);
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let plan = plan_for(
        &gpu,
        &compiled[0],
        &geometry_for(&compiled[0], 512, 512, (32, 4)),
    );
    let naive = app
        .pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            Policy::Naive,
            ExecMode::Sampled,
        )
        .unwrap();
    let ispm = app
        .pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            Policy::Model(Variant::IspBlock),
            ExecMode::Sampled,
        )
        .unwrap();
    if plan.variant == Variant::Naive {
        assert_eq!(ispm.total_cycles, naive.total_cycles);
        assert_eq!(ispm.stage_variants, vec![Variant::Naive]);
    } else {
        assert_eq!(ispm.stage_variants, vec![Variant::IspBlock]);
    }
}

#[test]
fn kepler_loses_occupancy_on_bilateral_but_turing_does_not() {
    // The paper's §VI-A.2 architectural pivot, end to end.
    let spec = isp_filters::bilateral::spec(13);
    let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
    let threads = 128;
    let kepler = DeviceSpec::gtx680();
    let turing = DeviceSpec::rtx2080();
    let isp_regs = ck.isp.as_ref().unwrap().regs.data_regs;
    let naive_regs = ck.naive.regs.data_regs;
    assert!(isp_regs > naive_regs, "ISP must cost registers");
    let ok_n = isp_sim::occupancy(&kepler, threads, naive_regs).occupancy;
    let ok_i = isp_sim::occupancy(&kepler, threads, isp_regs).occupancy;
    let ot_n = isp_sim::occupancy(&turing, threads, naive_regs).occupancy;
    let ot_i = isp_sim::occupancy(&turing, threads, isp_regs).occupancy;
    assert!(ok_i < ok_n, "Kepler must lose occupancy: {ok_i} vs {ok_n}");
    assert_eq!(ot_i, ot_n, "Turing must not lose occupancy");
}

#[test]
fn model_gain_tracks_measured_speedup_direction() {
    // Over the bilateral sweep, predicted G and measured S must correlate
    // strongly (the paper's Table III Pearson check).
    let app = isp_filters::by_name("bilateral").unwrap();
    let mut gains = Vec::new();
    let mut speeds = Vec::new();
    for device in DeviceSpec::all() {
        for pattern in BorderPattern::ALL {
            for size in [512usize, 2048] {
                let exp = isp_bench::runner::Experiment::paper(
                    device.clone(),
                    app.clone(),
                    pattern,
                    size,
                );
                let m = isp_bench::runner::measure_app(&exp);
                gains.push(m.stage_gains[0]);
                speeds.push(m.speedup_isp);
            }
        }
    }
    let r = isp_bench::stats::pearson(&gains, &speeds).expect("non-degenerate");
    assert!(r > 0.9, "model must track measurement, Pearson r = {r}");
}

#[test]
fn repeat_pattern_benefits_most() {
    // Paper: "the Repeat border handling pattern benefits more from the ISP
    // approach than the other three patterns".
    let app = isp_filters::by_name("gaussian").unwrap();
    let device = DeviceSpec::gtx680();
    let speedup = |pattern| {
        let exp = isp_bench::runner::Experiment::paper(device.clone(), app.clone(), pattern, 2048);
        isp_bench::runner::measure_app(&exp).speedup_isp
    };
    let repeat = speedup(BorderPattern::Repeat);
    for other in [
        BorderPattern::Clamp,
        BorderPattern::Mirror,
        BorderPattern::Constant,
    ] {
        assert!(
            repeat > speedup(other),
            "repeat ({repeat}) must beat {other}"
        );
    }
}

#[test]
fn speedup_grows_with_image_size() {
    let app = isp_filters::by_name("gaussian").unwrap();
    let device = DeviceSpec::rtx2080();
    let mut prev = 0.0;
    for size in [512usize, 1024, 2048, 4096] {
        let exp = isp_bench::runner::Experiment::paper(
            device.clone(),
            app.clone(),
            BorderPattern::Repeat,
            size,
        );
        let s = isp_bench::runner::measure_app(&exp).speedup_isp;
        assert!(s > prev, "speedup must grow with size: {s} at {size}");
        prev = s;
    }
}

#[test]
fn point_ops_never_partition() {
    let app = isp_filters::by_name("sobel").unwrap();
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let border = BorderSpec::clamp();
    let source = ImageGenerator::new(3).natural::<f32>(256, 256);
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let run = app
        .pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            Policy::AlwaysIsp(Variant::IspBlock),
            ExecMode::Sampled,
        )
        .unwrap();
    assert_eq!(
        run.stage_variants[2],
        Variant::Naive,
        "magnitude is a point op"
    );
    assert!(run.stage_variants[..2].iter().all(|v| v.is_isp()));
}

#[test]
fn closed_form_and_ir_stats_models_agree_directionally() {
    // The paper's closed-form Eqs. (3)-(9) and the PTX-statistics model must
    // rank (pattern, size) pairs the same way even though their absolute
    // ratios differ.
    use isp_core::bounds::Geometry;
    use isp_core::{ClosedFormModel, IndexBounds};
    let spec = isp_filters::gaussian::spec(3);
    let mut closed = Vec::new();
    let mut stats = Vec::new();
    for pattern in BorderPattern::ALL {
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
        for size in [512usize, 2048] {
            let g = Geometry {
                sx: size,
                sy: size,
                m: 3,
                n: 3,
                tx: 32,
                ty: 4,
            };
            let bounds = IndexBounds::new(&g);
            // Closed form: n_check grows with the pattern's per-side cost.
            let n_check = match pattern {
                BorderPattern::Clamp => 2.0,
                BorderPattern::Mirror => 4.0,
                BorderPattern::Repeat => 6.0,
                BorderPattern::Constant => 3.0,
            };
            let cf = ClosedFormModel {
                n_check,
                ..ClosedFormModel::generic(6.0)
            };
            closed.push(cf.r_reduced(&g));
            stats.push(ck.ir_stats_model().unwrap().r_reduced(&bounds));
        }
    }
    let r = isp_bench::stats::pearson(&closed, &stats).unwrap();
    assert!(r > 0.7, "models must correlate, r = {r}");
}

#[test]
fn u16_images_roundtrip_through_the_simulator() {
    // 16-bit medical-style imagery with the Mirror pattern the paper cites
    // for multiresolution medical filters.
    let img16 = ImageGenerator::new(77).natural::<u16>(96, 64);
    let img: isp_image::Image<f32> = img16.map(|p| p as f32 / 65535.0);
    let spec = isp_filters::gaussian::spec(5);
    let ck = Compiler::new().compile(&spec, BorderPattern::Mirror, Variant::IspBlock);
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let out = isp_dsl::runner::run_filter(
        &gpu,
        &ck,
        Variant::IspBlock,
        &[&img],
        &[],
        0.0,
        (32, 4),
        isp_dsl::runner::ExecMode::Exhaustive,
    )
    .unwrap();
    let back: isp_image::Image<u16> = out.image.unwrap().map(|v| (v * 65535.0).round() as u16);
    let golden = isp_dsl::eval::reference_run(&spec, &[&img], BorderSpec::mirror(), &[]);
    let golden16: isp_image::Image<u16> = golden.map(|v| (v * 65535.0).round() as u16);
    // Quantised outputs may differ by one code value at rounding boundaries.
    assert!(back.max_abs_diff(&golden16).unwrap() <= 1.0);
}
