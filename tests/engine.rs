//! Integration tests for the `isp-exec` engine: parallel exhaustive
//! simulation must be bit-identical to serial, and the kernel/plan caches
//! must actually cache (compile-once, observable hit counts).

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::{run_filter_with, ExecMode, ExecStrategy};
use isp_exec::{Engine, Request, Sweep, PAPER_BLOCK};
use isp_filters::by_name;
use isp_image::{BorderPattern, ImageGenerator};
use isp_sim::DeviceSpec;

/// The determinism contract of the parallel exhaustive path: fanning block
/// workers out across threads produces exactly the pixels, counters, and
/// cycle counts of the serial fold — not approximately, bit for bit.
#[test]
fn parallel_exhaustive_is_bit_identical_to_serial() {
    let engine = Engine::new(DeviceSpec::gtx680());
    let spec = isp_filters::gaussian::spec(3);
    let ck = engine.compile(&spec, BorderPattern::Mirror, Variant::IspBlock);
    let img = ImageGenerator::new(11).natural::<f32>(256, 256);

    for variant in [Variant::Naive, Variant::IspBlock] {
        let run = |strategy| {
            run_filter_with(
                engine.gpu(),
                &ck,
                variant,
                &[&img],
                &[],
                0.0,
                PAPER_BLOCK,
                ExecMode::Exhaustive,
                strategy,
            )
            .expect("exhaustive launch")
        };
        let par = run(ExecStrategy::Parallel);
        let ser = run(ExecStrategy::Serial);

        let par_img = par.image.expect("pixels");
        let ser_img = ser.image.expect("pixels");
        assert_eq!(
            par_img.max_abs_diff(&ser_img).unwrap(),
            0.0,
            "{variant}: pixels must be bit-identical"
        );
        assert_eq!(
            par.report.counters, ser.report.counters,
            "{variant}: PerfCounters must be identical"
        );
        assert_eq!(
            par.report.timing.cycles, ser.report.timing.cycles,
            "{variant}: cycle counts must be identical"
        );
    }
}

/// Whole-pipeline determinism through the engine's Request API: a
/// multi-kernel app run exhaustively agrees between strategies.
#[test]
fn engine_exhaustive_requests_are_strategy_independent() {
    let engine = Engine::new(DeviceSpec::rtx2080());
    let base = Request::paper(
        by_name("sobel").unwrap(),
        BorderPattern::Clamp,
        128,
        Policy::Model(Variant::IspBlock),
    )
    .exhaustive();

    let par = engine
        .run(&base.clone().with_strategy(ExecStrategy::Parallel))
        .unwrap();
    let ser = engine
        .run(&base.with_strategy(ExecStrategy::Serial))
        .unwrap();
    assert_eq!(
        par.image
            .unwrap()
            .max_abs_diff(&ser.image.unwrap())
            .unwrap(),
        0.0
    );
    assert_eq!(par.counters, ser.counters);
    assert_eq!(par.total_cycles, ser.total_cycles);
    assert_eq!(par.stage_variants, ser.stage_variants);
}

/// The compile-once contract: across a full paper-style size/pattern sweep,
/// each (app stage, pattern, granularity) kernel is compiled exactly once,
/// and every further lookup is an observable hit.
#[test]
fn kernel_cache_compiles_each_variant_once_across_a_sweep() {
    let engine = Engine::new(DeviceSpec::gtx680());
    let app = by_name("gaussian").unwrap();
    let stages = app.pipeline.stages.len() as u64;
    let patterns = BorderPattern::ALL;
    let sizes = [256usize, 512];

    for pattern in patterns {
        for size in sizes {
            engine.measure(&Sweep::paper(app.clone(), pattern, size));
        }
    }

    let stats = engine.cache_stats();
    assert_eq!(
        stats.kernel_misses,
        stages * patterns.len() as u64,
        "exactly one compile per (stage, pattern, granularity)"
    );
    // Each measure() point looks the pipeline up 4x (three policies + stage
    // gains); everything beyond the first lookup per pattern must hit.
    let lookups = stages * (patterns.len() * sizes.len() * 4) as u64;
    assert_eq!(stats.kernel_hits, lookups - stats.kernel_misses);
    // Plans are keyed by geometry too: one miss per (pattern, size), the
    // rest hits (the model policy + the stage-gain query share the cache).
    assert_eq!(stats.plan_misses, (patterns.len() * sizes.len()) as u64);
    assert!(
        stats.plan_hits >= stats.plan_misses,
        "plan cache must be reused"
    );

    // Re-running the whole sweep adds zero compiles.
    for pattern in patterns {
        for size in sizes {
            engine.measure(&Sweep::paper(app.clone(), pattern, size));
        }
    }
    assert_eq!(engine.cache_stats().kernel_misses, stats.kernel_misses);
    assert_eq!(engine.cache_stats().plan_misses, stats.plan_misses);
}

/// The engine's measurements must match the legacy uncached path exactly —
/// caching may never change results.
#[test]
fn engine_measurement_matches_uncached_path() {
    let device = DeviceSpec::gtx680();
    let engine = Engine::new(device.clone());
    let app = by_name("laplace").unwrap();
    let m = engine.measure(&Sweep::paper(app.clone(), BorderPattern::Repeat, 512));

    // Uncached: compile and run by hand, as the harness binaries used to.
    let gpu = isp_sim::Gpu::new(device);
    let border = isp_image::BorderSpec::from_pattern(BorderPattern::Repeat);
    let compiled = app
        .pipeline
        .compile(&isp_dsl::Compiler::new(), border, Variant::IspBlock);
    let source = isp_exec::bench_image(512);
    let run = |policy| {
        app.pipeline
            .run(
                &gpu,
                &compiled,
                &source,
                border,
                PAPER_BLOCK,
                policy,
                ExecMode::Sampled,
            )
            .unwrap()
    };
    assert_eq!(m.naive_cycles, run(Policy::Naive).total_cycles);
    assert_eq!(
        m.isp_cycles,
        run(Policy::AlwaysIsp(Variant::IspBlock)).total_cycles
    );
    assert_eq!(
        m.ispm_cycles,
        run(Policy::Model(Variant::IspBlock)).total_cycles
    );
}
