//! Optimiser soundness at full-application scale: the fixed-point pass
//! pipeline (`OptConfig::pipeline()`, the compiler default) must be
//! observationally invisible — for every filter and border pattern, the
//! optimised kernels produce bit-identical pixels to completely unoptimised
//! ones (`OptConfig::none()`), under all three execution engines, while
//! executing measurably fewer instructions (the paper's §IV-A point that
//! NVCC's optimiser narrows the naive/ISP gap).

use isp_core::Variant;
use isp_dsl::pipeline::{PipelineRun, Policy};
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_image::{BorderPattern, BorderSpec, ImageGenerator};
use isp_ir::opt::OptConfig;
use isp_sim::{DeviceSpec, ExecEngine, Gpu};

const ENGINES: [ExecEngine; 3] = [
    ExecEngine::Reference,
    ExecEngine::Decoded,
    ExecEngine::Replay,
];

/// Debug builds (the `cargo test` tier) run a representative slice —
/// unoptimized kernels under the tree-walking reference engine are ~10x
/// slower than release, and the full 5x4x2x3 sweep is CI's job (the
/// workflow runs this test `--release` over everything).
fn sweep_apps() -> Vec<isp_filters::App> {
    let apps = isp_filters::apps::all_apps();
    if cfg!(debug_assertions) {
        apps.into_iter().take(1).collect()
    } else {
        apps
    }
}

fn sweep_patterns() -> &'static [BorderPattern] {
    if cfg!(debug_assertions) {
        &BorderPattern::ALL[..2]
    } else {
        &BorderPattern::ALL[..]
    }
}

fn run_app(
    engine: ExecEngine,
    app: &isp_filters::App,
    pattern: BorderPattern,
    policy: Policy,
    opt: OptConfig,
) -> PipelineRun {
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
    let border = BorderSpec {
        pattern,
        constant: 0.25,
    };
    let source = ImageGenerator::new(42).natural::<f32>(64, 64);
    let compiled = app
        .pipeline
        .compile(&Compiler::with_opt(opt), border, Variant::IspBlock);
    app.pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            policy,
            ExecMode::Exhaustive,
        )
        .unwrap_or_else(|e| panic!("{} {pattern} {policy:?}: {e}", app.name))
}

fn pixels(run: &PipelineRun) -> Vec<u32> {
    run.image
        .as_ref()
        .expect("exhaustive runs produce pixels")
        .raw()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// The full sweep: every filter × every pattern, optimised vs unoptimised,
/// under all three engines. Within one optimisation config the engines must
/// agree exactly (pixels, counters, cycles — the write journal is covered
/// by bit-exact pixels, since stages overwrite shared output buffers);
/// across configs the *pixels* must agree exactly while the optimised
/// instruction stream must be strictly smaller.
#[test]
fn pipeline_vs_none_full_sweep_is_bit_identical() {
    for app in sweep_apps() {
        for pattern in sweep_patterns().iter().copied() {
            let label = format!("{} {pattern}", app.name);
            let mut per_config: Vec<PipelineRun> = Vec::new();
            for opt in [OptConfig::pipeline(), OptConfig::none()] {
                let runs: Vec<PipelineRun> = ENGINES
                    .iter()
                    .map(|&e| run_app(e, &app, pattern, Policy::AlwaysIsp(Variant::IspBlock), opt))
                    .collect();
                for (engine, run) in ENGINES.iter().zip(&runs).skip(1) {
                    assert_eq!(
                        runs[0].counters, run.counters,
                        "{label} {engine:?}: counters"
                    );
                    assert_eq!(
                        runs[0].total_cycles, run.total_cycles,
                        "{label} {engine:?}: cycles"
                    );
                    assert_eq!(pixels(&runs[0]), pixels(run), "{label} {engine:?}: pixels");
                }
                per_config.push(runs.into_iter().next().unwrap());
            }
            let (pipe, none) = (&per_config[0], &per_config[1]);
            assert_eq!(
                pixels(pipe),
                pixels(none),
                "{label}: optimisation must not change pixels"
            );
            assert!(
                pipe.counters.warp_instructions < none.counters.warp_instructions,
                "{label}: pipeline must shrink the executed stream ({} vs {})",
                pipe.counters.warp_instructions,
                none.counters.warp_instructions
            );
        }
    }
}

/// The acceptance bar from the paper's observation: on the naive border
/// variants the pipeline removes at least 10% of *executed* instructions
/// relative to a completely unoptimised build, for every filter and
/// pattern — and stays pixel-exact while doing it.
#[test]
fn pipeline_reduces_naive_executed_instructions_by_ten_percent() {
    for app in sweep_apps() {
        for pattern in sweep_patterns().iter().copied() {
            let label = format!("{} {pattern}", app.name);
            let none = run_app(
                ExecEngine::Decoded,
                &app,
                pattern,
                Policy::Naive,
                OptConfig::none(),
            );
            let pipe = run_app(
                ExecEngine::Decoded,
                &app,
                pattern,
                Policy::Naive,
                OptConfig::pipeline(),
            );
            assert_eq!(
                pixels(&pipe),
                pixels(&none),
                "{label}: naive pixels must be exact"
            );
            let (before, after) = (
                none.counters.warp_instructions,
                pipe.counters.warp_instructions,
            );
            let reduction = 1.0 - after as f64 / before as f64;
            assert!(
                reduction >= 0.10,
                "{label}: expected >=10% executed-instruction reduction, got {:.1}% ({} -> {})",
                100.0 * reduction,
                before,
                after
            );
        }
    }
}
