//! Golden instruction-count guard: the exact simulated counters for a
//! small gaussian configuration, pinned. The simulator is deterministic,
//! so any change to decode, interpretation, or cost charging that shifts
//! these numbers is a behavioural change and must be deliberate — update
//! the constants only when the simulator semantics are meant to move.

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_image::{BorderPattern, BorderSpec, ImageGenerator};
use isp_sim::{DeviceSpec, ExecEngine, Gpu};

/// One golden record: (policy label, warp_instructions, mem_transactions,
/// total_cycles).
const GOLDEN: [(&str, u64, u64, u64); 2] =
    [("naive", 9216, 1664, 10924), ("isp", 12160, 1664, 11468)];

fn run(engine: ExecEngine, policy: Policy) -> (u64, u64, u64) {
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);
    let source = ImageGenerator::new(7).natural::<f32>(64, 64);
    let app = isp_filters::by_name("gaussian").unwrap();
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let run = app
        .pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            policy,
            ExecMode::Exhaustive,
        )
        .unwrap();
    (
        run.counters.warp_instructions,
        run.counters.mem_transactions,
        run.total_cycles,
    )
}

#[test]
fn gaussian_64_clamp_counts_are_golden() {
    for (label, warp_instructions, mem_transactions, total_cycles) in GOLDEN {
        let policy = match label {
            "naive" => Policy::Naive,
            _ => Policy::AlwaysIsp(Variant::IspBlock),
        };
        for engine in [
            ExecEngine::Reference,
            ExecEngine::Decoded,
            ExecEngine::Replay,
        ] {
            let got = run(engine, policy);
            assert_eq!(
                got,
                (warp_instructions, mem_transactions, total_cycles),
                "{label} under {engine:?}: (warp_instructions, mem_transactions, total_cycles)"
            );
        }
    }
}
