//! Golden instruction-count guard: the exact simulated counters for a
//! small gaussian configuration, pinned. The simulator is deterministic,
//! so any change to decode, interpretation, or cost charging that shifts
//! these numbers is a behavioural change and must be deliberate — update
//! the constants only when the simulator semantics are meant to move.

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_image::{BorderPattern, BorderSpec, ImageGenerator};
use isp_ir::opt::{optimize_with_stats, OptConfig};
use isp_sim::{decode, decode_with_fusion, DeviceSpec, ExecEngine, Gpu};

/// One golden record: (policy label, warp_instructions, mem_transactions,
/// total_cycles). Baseline under the `OptConfig::pipeline()` default.
const GOLDEN: [(&str, u64, u64, u64); 2] =
    [("naive", 9344, 1664, 10941), ("isp", 11412, 1664, 11380)];

fn run(engine: ExecEngine, policy: Policy) -> (u64, u64, u64) {
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);
    let source = ImageGenerator::new(7).natural::<f32>(64, 64);
    let app = isp_filters::by_name("gaussian").unwrap();
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let run = app
        .pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            policy,
            ExecMode::Exhaustive,
        )
        .unwrap();
    (
        run.counters.warp_instructions,
        run.counters.mem_transactions,
        run.total_cycles,
    )
}

#[test]
fn gaussian_64_clamp_counts_are_golden() {
    for (label, warp_instructions, mem_transactions, total_cycles) in GOLDEN {
        let policy = match label {
            "naive" => Policy::Naive,
            _ => Policy::AlwaysIsp(Variant::IspBlock),
        };
        for engine in [
            ExecEngine::Reference,
            ExecEngine::Decoded,
            ExecEngine::Replay,
        ] {
            let got = run(engine, policy);
            assert_eq!(
                got,
                (warp_instructions, mem_transactions, total_cycles),
                "{label} under {engine:?}: (warp_instructions, mem_transactions, total_cycles)"
            );
        }
    }
}

/// Per-pass optimiser breakdown for the same gaussian compile, pinned.
/// Golden rows: (variant label, iterations, before, after, copy_prop,
/// fold, strength rewrites, vn, dce, cfg). Any pass-behaviour change moves
/// these and must be deliberate.
type OptGoldenRow = (&'static str, u64, u64, u64, u64, u64, u64, u64, u64, u64);
const GOLDEN_OPT: [OptGoldenRow; 2] = [
    ("naive", 2, 121, 73, 0, 0, 0, 48, 0, 0),
    ("isp", 2, 673, 471, 0, 0, 0, 201, 0, 1),
];

/// Static fusion goldens for the same gaussian compile: (variant label,
/// decoded ops, fused dispatch units, groups, ops absorbed, dispatches
/// saved). Pins the superinstruction matcher's coverage — a peephole
/// change that fuses more or fewer sequences moves these and must be
/// deliberate. Runtime observables are pinned separately above (and must
/// NOT move with fusion at all).
const GOLDEN_FUSE: [(&str, usize, usize, u64, u64, u64); 2] = [
    ("naive", 70, 28, 28, 70, 42),
    ("isp", 452, 184, 182, 450, 268),
];

#[test]
fn gaussian_fused_dispatch_counts_are_golden() {
    let device = DeviceSpec::gtx680();
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);
    let app = isp_filters::by_name("gaussian").unwrap();
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let ck = &compiled[0];
    for (label, ops, dispatches, groups, fused_ops, saved) in GOLDEN_FUSE {
        let cv = match label {
            "naive" => &ck.naive,
            _ => ck.isp.as_ref().unwrap(),
        };
        let plain = decode_with_fusion(&cv.kernel, &device, false);
        // `decode` itself defaults to fusion on — the engines' hot path.
        let fused = decode(&cv.kernel, &device);
        // Fusion never alters the decoded instruction stream itself — only
        // the dispatch grouping over it.
        assert_eq!(plain.num_ops(), fused.num_ops(), "{label}: op stream");
        assert_eq!(
            plain.num_dispatches(),
            plain.num_ops(),
            "{label}: unfused 1:1"
        );
        assert_eq!(
            plain.fusion_stats(),
            Default::default(),
            "{label}: unfused stats"
        );
        let s = fused.fusion_stats();
        assert_eq!(
            (
                fused.num_ops(),
                fused.num_dispatches(),
                s.groups,
                s.fused_ops,
                s.dispatches_saved
            ),
            (ops, dispatches, groups, fused_ops, saved),
            "{label}: (ops, dispatches, groups, fused_ops, saved)"
        );
        // Bookkeeping identity: every op is dispatched exactly once.
        assert_eq!(
            fused.num_dispatches() as u64 + s.dispatches_saved,
            fused.num_ops() as u64,
            "{label}: dispatch conservation"
        );
    }
}

#[test]
fn gaussian_opt_pass_breakdown_is_golden_and_idempotent() {
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);
    let app = isp_filters::by_name("gaussian").unwrap();
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let ck = &compiled[0];
    for (label, iters, before, after, cp, fold, sr, vn, dce, cfg) in GOLDEN_OPT {
        let cv = match label {
            "naive" => &ck.naive,
            _ => ck.isp.as_ref().unwrap(),
        };
        let s = cv.opt_stats;
        assert!(s.reached_fixed_point, "{label}: {s:?}");
        assert_eq!(
            (
                s.iterations,
                s.before_instrs,
                s.after_instrs,
                s.copy_prop_removed,
                s.fold_removed,
                s.strength_rewrites,
                s.vn_removed,
                s.dce_removed,
                s.cfg_removed,
            ),
            (iters, before, after, cp, fold, sr, vn, dce, cfg),
            "{label} per-pass breakdown: {s:?}"
        );
        // Idempotence: the shipped kernel is a fixed point of the pipeline.
        let (again, s2) = optimize_with_stats(&cv.kernel, OptConfig::pipeline());
        assert_eq!(again, cv.kernel, "{label}: pipeline output must be stable");
        assert_eq!(s2.iterations, 1, "{label}: re-run converges immediately");
        assert!(s2.reached_fixed_point);
        assert_eq!(s2.removed_total(), 0);
    }
}
