//! Differential tests for the decoded-kernel fast path: the decoded engine
//! must be observationally identical to the tree-walking reference
//! interpreter — same pixels (bit-for-bit), same counters, same cycles,
//! same write-journal order, same errors — across every filter, every
//! border pattern, and randomly generated loop-free kernels.

use isp_core::Variant;
use isp_dsl::pipeline::{PipelineRun, Policy};
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_image::{BorderPattern, BorderSpec, ImageGenerator};
use isp_ir::{BinOp, CmpOp, IrBuilder, Kernel, SReg, Ty, UnOp};
use isp_sim::interp::{run_block, BlockContext, BlockRun};
use isp_sim::{
    decode, run_block_decoded, DecodedBlockCtx, DecodedScratch, DeviceBuffer, DeviceSpec,
    ExecEngine, ExecStrategy, Gpu, LaunchConfig, ParamValue, SimMode,
};
use proptest::prelude::*;

/// Run one app through the pipeline under a given simulator engine.
fn run_app(
    engine: ExecEngine,
    app: &isp_filters::App,
    pattern: BorderPattern,
    policy: Policy,
    mode: ExecMode,
    size: usize,
) -> PipelineRun {
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
    let border = BorderSpec {
        pattern,
        constant: 0.25,
    };
    let source = ImageGenerator::new(99).natural::<f32>(size, size);
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    app.pipeline
        .run(&gpu, &compiled, &source, border, (32, 4), policy, mode)
        .unwrap_or_else(|e| panic!("{} {pattern} {policy:?}: {e}", app.name))
}

/// Assert two pipeline runs are observationally identical.
fn assert_runs_equal(r: &PipelineRun, d: &PipelineRun, label: &str) {
    assert_eq!(r.counters, d.counters, "{label}: counters");
    assert_eq!(r.total_cycles, d.total_cycles, "{label}: cycles");
    assert_eq!(r.stage_variants, d.stage_variants, "{label}: variants");
    assert_eq!(r.per_region, d.per_region, "{label}: per-region");
    match (&r.image, &d.image) {
        (Some(a), Some(b)) => assert_eq!(a.raw(), b.raw(), "{label}: pixels"),
        (None, None) => {}
        _ => panic!("{label}: one engine produced pixels, the other did not"),
    }
}

#[test]
fn every_app_every_pattern_matches_exhaustive() {
    for app in isp_filters::apps::all_apps() {
        for pattern in BorderPattern::ALL {
            for policy in [Policy::Naive, Policy::AlwaysIsp(Variant::IspBlock)] {
                let r = run_app(
                    ExecEngine::Reference,
                    &app,
                    pattern,
                    policy,
                    ExecMode::Exhaustive,
                    64,
                );
                let d = run_app(
                    ExecEngine::Decoded,
                    &app,
                    pattern,
                    policy,
                    ExecMode::Exhaustive,
                    64,
                );
                assert_runs_equal(&r, &d, &format!("{} {pattern} {policy:?}", app.name));
            }
        }
    }
}

#[test]
fn every_app_every_pattern_matches_sampled() {
    for app in isp_filters::apps::all_apps() {
        for pattern in BorderPattern::ALL {
            let r = run_app(
                ExecEngine::Reference,
                &app,
                pattern,
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Sampled,
                256,
            );
            let d = run_app(
                ExecEngine::Decoded,
                &app,
                pattern,
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Sampled,
                256,
            );
            assert_runs_equal(&r, &d, &format!("{} {pattern} sampled", app.name));
        }
    }
}

/// Build a loop-free two-buffer kernel from a random op tape: guard on the
/// image bounds (divergence at ragged edges), a chain of float/int ops with
/// immediates, optionally a divergent store (odd/even lanes store different
/// values through different blocks), then reconverge and retire.
fn prop_kernel(ops: &[(u8, i32)], divergent: bool) -> Kernel {
    let mut b = IrBuilder::new("prop", 2);
    let pw = b.param("width", Ty::S32);
    let ph = b.param("height", Ty::S32);
    let body = b.create_block("body");
    let exit = b.create_block("exit");
    let tx = b.sreg(SReg::TidX);
    let ty = b.sreg(SReg::TidY);
    let bx = b.sreg(SReg::CtaIdX);
    let by = b.sreg(SReg::CtaIdY);
    let ntx = b.sreg(SReg::NTidX);
    let nty = b.sreg(SReg::NTidY);
    let gx = b.mad(Ty::S32, bx, ntx, tx);
    let gy = b.mad(Ty::S32, by, nty, ty);
    let w = b.ld_param(pw);
    let h = b.ld_param(ph);
    let px = b.setp(CmpOp::Lt, gx, w);
    let py = b.setp(CmpOp::Lt, gy, h);
    let p = b.bin(BinOp::And, Ty::Pred, px, py);
    b.cond_br(p, body, exit);

    b.switch_to(body);
    let addr = b.mad(Ty::S32, gy, w, gx);
    let mut v = b.ld(Ty::F32, 0, addr);
    let mut iv = addr;
    for &(code, raw) in ops {
        let fi = (raw % 17) as f32 * 0.25 - 2.0;
        let ii = raw % 13;
        match code % 12 {
            0 => v = b.bin(BinOp::Add, Ty::F32, v, fi),
            1 => v = b.bin(BinOp::Sub, Ty::F32, fi, v),
            2 => v = b.bin(BinOp::Mul, Ty::F32, v, fi),
            3 => v = b.bin(BinOp::Min, Ty::F32, v, fi),
            4 => v = b.bin(BinOp::Max, Ty::F32, v, fi),
            5 => v = b.un(UnOp::Abs, Ty::F32, v),
            6 => v = b.un(UnOp::Neg, Ty::F32, v),
            7 => v = b.un(UnOp::Floor, Ty::F32, v),
            8 => {
                iv = b.bin(BinOp::Xor, Ty::S32, iv, ii);
                let f = b.cvt(Ty::F32, iv);
                v = b.bin(BinOp::Add, Ty::F32, v, f);
            }
            9 => {
                let c = b.setp(CmpOp::Gt, v, fi);
                v = b.selp(Ty::F32, v, fi, c);
            }
            10 => {
                // Bounded round-trip: clamp to a small range first so the
                // f32->s32 conversion is well inside i32.
                let small = b.bin(BinOp::Min, Ty::F32, v, 64.0f32);
                let small = b.bin(BinOp::Max, Ty::F32, small, -64.0f32);
                let t = b.cvt(Ty::S32, small);
                let f = b.cvt(Ty::F32, t);
                v = b.bin(BinOp::Add, Ty::F32, v, f);
            }
            _ => {
                iv = b.bin(BinOp::Shl, Ty::S32, iv, ii & 3);
                iv = b.bin(BinOp::And, Ty::S32, iv, 0x3fff);
                let f = b.cvt(Ty::F32, iv);
                v = b.bin(BinOp::Max, Ty::F32, v, f);
            }
        }
    }
    if divergent {
        let even_blk = b.create_block("even");
        let odd_blk = b.create_block("odd");
        let bit = b.bin(BinOp::And, Ty::S32, gx, 1);
        let c = b.setp(CmpOp::Eq, bit, 0);
        b.cond_br(c, even_blk, odd_blk);
        b.switch_to(even_blk);
        b.st(1, addr, v);
        b.br(exit);
        b.switch_to(odd_blk);
        let neg = b.un(UnOp::Neg, Ty::F32, v);
        b.st(1, addr, neg);
        b.br(exit);
    } else {
        b.st(1, addr, v);
        b.br(exit);
    }
    b.switch_to(exit);
    b.ret();
    b.finish()
}

/// Per-block comparison of the two interpreters, including write-journal
/// order and error equality, plus a launch-level classified comparison.
fn check_generated_kernel(kernel: &Kernel, w: i32, h: i32) {
    let cfg = LaunchConfig {
        grid: (2, 2),
        block: (32, 4),
    };
    let params = [ParamValue::I32(w), ParamValue::I32(h)];
    let n = 2 * 32 * 2 * 4;
    let input: Vec<f32> = (0..n).map(|i| (i % 23) as f32 * 0.5 - 5.0).collect();
    let buffers = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(n)];

    for device in DeviceSpec::all() {
        let ipdom = isp_ir::cfg::Cfg::new(kernel).ipostdom();
        let dk = decode(kernel, &device);
        let mut scratch = DecodedScratch::new();
        for by in 0..cfg.grid.1 {
            for bx in 0..cfg.grid.0 {
                let reference: Result<BlockRun, _> = run_block(&BlockContext {
                    kernel,
                    ipdom: &ipdom,
                    device: &device,
                    grid: cfg.grid,
                    block_dim: cfg.block,
                    block_idx: (bx, by),
                    params: &params,
                    buffers: &buffers,
                });
                let decoded = run_block_decoded(
                    &dk,
                    &DecodedBlockCtx {
                        grid: cfg.grid,
                        block_dim: cfg.block,
                        block_idx: (bx, by),
                        params: &params,
                        buffers: &buffers,
                    },
                    &mut scratch,
                );
                match (reference, decoded) {
                    (Ok(r), Ok(d)) => {
                        assert_eq!(r.counters, d.counters, "({bx},{by}) counters");
                        assert_eq!(r.cycles, d.cycles, "({bx},{by}) cycles");
                        assert_eq!(r.writes, d.writes, "({bx},{by}) write journal");
                    }
                    (Err(r), Err(d)) => assert_eq!(r, d, "({bx},{by}) error"),
                    (r, d) => panic!("({bx},{by}) outcome mismatch: {r:?} vs {d:?}"),
                }
            }
        }

        // Launch level: classified exhaustive must agree on per-class
        // attribution too.
        let gpu = Gpu::new(device.clone());
        let classifier = |bx: u32, by: u32| bx + 2 * by;
        let mut results = Vec::new();
        for engine in [ExecEngine::Reference, ExecEngine::Decoded] {
            let mut bufs = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(n)];
            let report = gpu
                .launch_engine(
                    kernel,
                    cfg,
                    &params,
                    &mut bufs,
                    SimMode::ExhaustiveClassified {
                        classifier: &classifier,
                    },
                    ExecStrategy::Parallel,
                    engine,
                )
                .unwrap();
            results.push((report, bufs[1].to_f32()));
        }
        let (d_report, d_pixels) = results.pop().unwrap();
        let (r_report, r_pixels) = results.pop().unwrap();
        assert_eq!(r_report.counters, d_report.counters, "launch counters");
        assert_eq!(r_report.per_class, d_report.per_class, "launch per-class");
        assert_eq!(
            r_report.timing.cycles, d_report.timing.cycles,
            "launch timing"
        );
        let bits_r: Vec<u32> = r_pixels.iter().map(|v| v.to_bits()).collect();
        let bits_d: Vec<u32> = d_pixels.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_r, bits_d, "launch pixels (bit compare, NaN-safe)");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated loop-free kernels execute bit-identically under both
    /// interpreters — counters, cycles, write-journal order, per-class
    /// attribution, and pixels.
    #[test]
    fn generated_kernels_match_reference(
        tape in proptest::collection::vec((0u8..12, -1000i32..1000), 10),
        len in 0usize..10,
        divergent in 0u8..2,
        w_off in 0i32..12,
        h_off in 0i32..4,
    ) {
        let kernel = prop_kernel(&tape[..len], divergent == 1);
        // Ragged edges when the offsets shrink the image below the grid.
        check_generated_kernel(&kernel, 64 - w_off, 8 - h_off);
    }
}
