//! Integration tests for the `isp-probe` observability layer: the exported
//! Chrome trace is well-formed and structurally sound, simulated-time
//! timelines tile the launch's cycle count exactly, and attaching a
//! recording probe perturbs nothing (bit-identical runs).

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_exec::{Engine, Request};
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_ir::kernel::Kernel;
use isp_ir::{BinOp, CmpOp, IrBuilder, SReg, Ty, UnOp};
use isp_json::Json;
use isp_probe::{ProbeHandle, RecordingProbe};
use isp_sim::{DeviceBuffer, DeviceSpec, ExecStrategy, Gpu, LaunchConfig, ParamValue, SimMode};

// ---------------------------------------------------------------------------
// A minimal hand-written JSON validator. `isp-json` is emit-only by design,
// so well-formedness of the rendered trace is checked by an independent
// recursive-descent reader rather than by the emitter validating itself.

struct JsonReader<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> JsonReader<'a> {
    fn new(s: &'a str) -> Self {
        JsonReader {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{lit}'")))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or_else(|| self.fail("short \\u"))?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(self.fail("bad \\u digit"));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                }
                0x00..=0x1f => return Err(self.fail("raw control char in string")),
                _ => {}
            }
        }
        Err(self.fail("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |r: &mut Self| -> Result<(), String> {
            let start = r.i;
            while r.peek().is_some_and(|c| c.is_ascii_digit()) {
                r.i += 1;
            }
            if r.i == start {
                Err(r.fail("expected digit"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.fail("unexpected end"))? {
            b'n' => self.literal("null"),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'"' => self.string(),
            b'[' => {
                self.i += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(self.fail("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.i += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(self.fail("expected ',' or '}'")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.fail("unexpected character")),
        }
    }

    fn document(mut self) -> Result<(), String> {
        self.value()?;
        self.skip_ws();
        if self.i == self.s.len() {
            Ok(())
        } else {
            Err(self.fail("trailing garbage"))
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers

fn probed_engine() -> (std::sync::Arc<RecordingProbe>, Engine) {
    let (probe, handle) = RecordingProbe::new_handle();
    (probe, Engine::new(DeviceSpec::gtx680()).with_probe(handle))
}

fn run_both_policies(engine: &Engine, size: usize) {
    let app = by_name("gaussian").unwrap();
    for policy in [Policy::Naive, Policy::AlwaysIsp(Variant::IspBlock)] {
        let req = Request::paper(app.clone(), BorderPattern::Clamp, size, policy).exhaustive();
        engine.run(&req).unwrap();
    }
}

fn field_u64(ev: &Json, key: &str) -> Option<u64> {
    match ev.get(key) {
        Some(Json::U64(n)) => Some(*n),
        _ => None,
    }
}

fn field_str<'j>(ev: &'j Json, key: &str) -> Option<&'j str> {
    match ev.get(key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// The kernel from `tests/replay_diff.rs` whose control flow depends on the
/// loaded data: blocks whose sign pattern differs from the recorded block's
/// miss the branch guard and deopt — which is what puts deopt instants on
/// the timeline.
fn data_dependent_kernel() -> Kernel {
    let mut b = IrBuilder::new("datadep", 2);
    let pw = b.param("width", Ty::S32);
    let ph = b.param("height", Ty::S32);
    let body = b.create_block("body");
    let exit = b.create_block("exit");
    let tx = b.sreg(SReg::TidX);
    let ty = b.sreg(SReg::TidY);
    let bx = b.sreg(SReg::CtaIdX);
    let by = b.sreg(SReg::CtaIdY);
    let ntx = b.sreg(SReg::NTidX);
    let nty = b.sreg(SReg::NTidY);
    let gx = b.mad(Ty::S32, bx, ntx, tx);
    let gy = b.mad(Ty::S32, by, nty, ty);
    let w = b.ld_param(pw);
    let h = b.ld_param(ph);
    let px = b.setp(CmpOp::Lt, gx, w);
    let py = b.setp(CmpOp::Lt, gy, h);
    let p = b.bin(BinOp::And, Ty::Pred, px, py);
    b.cond_br(p, body, exit);
    b.switch_to(body);
    let pos = b.create_block("pos");
    let neg = b.create_block("neg");
    let addr = b.mad(Ty::S32, gy, w, gx);
    let v = b.ld(Ty::F32, 0, addr);
    let c = b.setp(CmpOp::Gt, v, 0.0f32);
    b.cond_br(c, pos, neg);
    b.switch_to(pos);
    let doubled = b.bin(BinOp::Add, Ty::F32, v, v);
    b.st(1, addr, doubled);
    b.br(exit);
    b.switch_to(neg);
    let negated = b.un(UnOp::Neg, Ty::F32, v);
    b.st(1, addr, negated);
    b.br(exit);
    b.switch_to(exit);
    b.ret();
    b.finish()
}

/// Mixed-sign input: block (0,0) records an all-positive trace, the rest
/// mix signs and deopt.
fn mixed_sign_input(w: usize, h: usize) -> Vec<f32> {
    (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            if x < 32 && y < 4 {
                1.0 + (i % 5) as f32
            } else if (x + y) % 2 == 0 {
                0.5
            } else {
                -1.5 - (i % 3) as f32
            }
        })
        .collect()
}

fn launch_datadep(gpu: &Gpu) -> (isp_sim::LaunchReport, Vec<u32>) {
    let kernel = data_dependent_kernel();
    let (w, h) = (64usize, 8usize);
    let cfg = LaunchConfig::for_image(w, h, (32, 4));
    let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
    let input = mixed_sign_input(w, h);
    let mut bufs = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
    let report = gpu
        .launch_with(
            &kernel,
            cfg,
            &params,
            &mut bufs,
            SimMode::Exhaustive,
            ExecStrategy::Serial,
        )
        .unwrap();
    let bits = bufs[1].to_f32().iter().map(|v| v.to_bits()).collect();
    (report, bits)
}

// ---------------------------------------------------------------------------
// Tests

#[test]
fn chrome_trace_is_well_formed_balanced_and_monotonic() {
    let (probe, engine) = probed_engine();
    run_both_policies(&engine, 64);

    let doc = probe.chrome_trace(&|c| format!("class{c}"));
    let text = doc.render_pretty();
    JsonReader::new(&text).document().expect("well-formed JSON");
    // The compact rendering must be equally valid.
    JsonReader::new(&doc.render()).document().unwrap();

    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents array");
    };
    assert!(!events.is_empty());

    // Group events by (pid, tid) preserving emission order, then check
    // every lane: balanced B/E brackets with matching names, timestamps
    // monotonically non-decreasing.
    let mut lanes: Vec<((u64, u64), Vec<&Json>)> = Vec::new();
    for ev in events {
        if field_str(ev, "ph") == Some("M") {
            continue;
        }
        let key = (field_u64(ev, "pid").unwrap(), field_u64(ev, "tid").unwrap());
        match lanes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(ev),
            None => lanes.push((key, vec![ev])),
        }
    }
    assert!(lanes.len() >= 2, "host lane plus at least one SM lane");
    let mut saw_span = false;
    for ((pid, tid), evs) in &lanes {
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0u64;
        for ev in evs {
            let ph = field_str(ev, "ph").unwrap();
            let ts = field_u64(ev, "ts").unwrap();
            assert!(ts >= last_ts, "lane ({pid},{tid}): ts {ts} after {last_ts}");
            last_ts = ts;
            let name = field_str(ev, "name").unwrap();
            match ph {
                "B" => {
                    saw_span = true;
                    stack.push(name);
                }
                "E" => {
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!("lane ({pid},{tid}): E '{name}' with no open span")
                    });
                    assert_eq!(open, name, "lane ({pid},{tid}): mismatched E");
                }
                "i" => {}
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert!(stack.is_empty(), "lane ({pid},{tid}): unclosed {stack:?}");
    }
    assert!(saw_span, "trace carries at least one duration span");

    // Host spans from the engine made it in.
    let names: Vec<&str> = events.iter().filter_map(|e| field_str(e, "name")).collect();
    for expected in ["request", "compile", "launch"] {
        assert!(names.contains(&expected), "missing host span '{expected}'");
    }
}

#[test]
fn timeline_slices_tile_launch_cycles_and_pin_deopts() {
    let (probe, handle) = RecordingProbe::new_handle();
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_probe(handle);
    let (report, _) = launch_datadep(&gpu);
    assert!(gpu.trace_stats().deopted >= 1, "setup must deopt");

    let timelines = probe.timelines();
    assert_eq!(timelines.len(), 1);
    let tl = &timelines[0];
    assert_eq!(tl.cycles, report.timing.cycles);
    assert_eq!(tl.slices.len(), 4, "one slice per block of the 2x2 grid");

    // Per-SM slices tile [0, sm_busy] with no gaps or overlaps, starting
    // at cycle 0 on every occupied SM.
    let mut sms: Vec<u32> = tl.slices.iter().map(|s| s.sm).collect();
    sms.sort_unstable();
    sms.dedup();
    let mut max_end = 0u64;
    for &sm in &sms {
        let mut slices: Vec<_> = tl.slices.iter().filter(|s| s.sm == sm).collect();
        slices.sort_by_key(|s| s.start);
        assert_eq!(slices[0].start, 0, "SM {sm} starts at cycle 0");
        for w in slices.windows(2) {
            assert_eq!(
                w[0].end, w[1].start,
                "SM {sm}: gap/overlap between consecutive blocks"
            );
        }
        for s in &slices {
            assert!(s.end > s.start, "zero-width slice on SM {sm}");
        }
        max_end = max_end.max(slices.last().unwrap().end);
    }
    assert_eq!(
        tl.launch_overhead + max_end,
        report.timing.cycles,
        "slices tile the report's cycle count exactly"
    );

    // Deopt instants sit at the end of a slice on their SM, with a known
    // reason name.
    assert!(!tl.deopts.is_empty(), "deopting launch must emit instants");
    let reasons: Vec<&str> = isp_sim::DeoptReason::ALL.iter().map(|d| d.name()).collect();
    for d in &tl.deopts {
        assert!(reasons.contains(&d.reason), "unknown reason {:?}", d.reason);
        assert!(
            tl.slices
                .iter()
                .any(|s| s.sm == d.sm && s.end == d.at && s.outcome == "deopted"),
            "deopt at {} on SM {} has no matching deopted slice",
            d.at,
            d.sm
        );
    }
}

#[test]
fn recording_probe_runs_bit_identical_to_noop() {
    // Raw Gpu launches: pixels, counters, and cycles must not change when a
    // recording probe is attached.
    let silent = Gpu::new(DeviceSpec::gtx680());
    let (_probe, handle) = RecordingProbe::new_handle();
    let probed = Gpu::new(DeviceSpec::gtx680()).with_probe(handle);
    let (r_silent, bits_silent) = launch_datadep(&silent);
    let (r_probed, bits_probed) = launch_datadep(&probed);
    assert_eq!(r_silent.counters, r_probed.counters);
    assert_eq!(r_silent.timing.cycles, r_probed.timing.cycles);
    assert_eq!(bits_silent, bits_probed, "write journal must be identical");

    // Full engine pipeline: same outcome with and without a probe.
    let app = by_name("gaussian").unwrap();
    let req = Request::paper(
        app,
        BorderPattern::Mirror,
        64,
        Policy::AlwaysIsp(Variant::IspBlock),
    )
    .exhaustive();
    let plain = Engine::new(DeviceSpec::gtx680());
    let (_probe2, engine) = probed_engine();
    let a = plain.run(&req).unwrap();
    let b = engine.run(&req).unwrap();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.image.unwrap().raw(), b.image.unwrap().raw());
}

#[test]
fn disabled_handle_records_nothing() {
    let handle = ProbeHandle::none();
    assert!(!handle.is_enabled());
    assert!(handle.begin().is_none());
    // The detail closure must not run for a disabled probe.
    handle.span("x", "test", None, || {
        panic!("detail evaluated while disabled")
    });
}
