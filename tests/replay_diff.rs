//! Differential tests for the guarded trace-replay engine: `Replay` must be
//! observationally identical to both the decoded engine and the reference
//! interpreter — same pixels (bit-for-bit), same counters, same cycles,
//! same write-journal order, same per-class attribution — across every
//! filter, every border pattern, and randomly generated kernels, including
//! data-dependent kernels that force replay guards to miss and deopt.

use isp_core::Variant;
use isp_dsl::pipeline::{PipelineRun, Policy};
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_exec::Engine;
use isp_image::{BorderPattern, BorderSpec, ImageGenerator};
use isp_ir::{BinOp, BlockId, CmpOp, IrBuilder, Kernel, SReg, Ty, UnOp, VReg};
use isp_sim::{
    DeviceBuffer, DeviceSpec, ExecEngine, ExecStrategy, Gpu, LaunchConfig, LaunchReport,
    ParamValue, SimMode,
};
use proptest::prelude::*;

const ENGINES: [ExecEngine; 3] = [
    ExecEngine::Reference,
    ExecEngine::Decoded,
    ExecEngine::Replay,
];

/// Run one app through the pipeline under a given simulator engine.
fn run_app(
    engine: ExecEngine,
    app: &isp_filters::App,
    pattern: BorderPattern,
    policy: Policy,
    mode: ExecMode,
    size: usize,
) -> PipelineRun {
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
    let border = BorderSpec {
        pattern,
        constant: 0.25,
    };
    let source = ImageGenerator::new(99).natural::<f32>(size, size);
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    app.pipeline
        .run(&gpu, &compiled, &source, border, (32, 4), policy, mode)
        .unwrap_or_else(|e| panic!("{} {pattern} {policy:?}: {e}", app.name))
}

/// Assert two pipeline runs are observationally identical.
fn assert_runs_equal(r: &PipelineRun, d: &PipelineRun, label: &str) {
    assert_eq!(r.counters, d.counters, "{label}: counters");
    assert_eq!(r.total_cycles, d.total_cycles, "{label}: cycles");
    assert_eq!(r.stage_variants, d.stage_variants, "{label}: variants");
    assert_eq!(r.per_region, d.per_region, "{label}: per-region");
    match (&r.image, &d.image) {
        (Some(a), Some(b)) => assert_eq!(a.raw(), b.raw(), "{label}: pixels"),
        (None, None) => {}
        _ => panic!("{label}: one engine produced pixels, the other did not"),
    }
}

#[test]
fn every_app_every_pattern_replay_matches_exhaustive() {
    for app in isp_filters::apps::all_apps() {
        for pattern in BorderPattern::ALL {
            for policy in [Policy::Naive, Policy::AlwaysIsp(Variant::IspBlock)] {
                let label = format!("{} {pattern} {policy:?}", app.name);
                let p = run_app(
                    ExecEngine::Replay,
                    &app,
                    pattern,
                    policy,
                    ExecMode::Exhaustive,
                    64,
                );
                let r = run_app(
                    ExecEngine::Reference,
                    &app,
                    pattern,
                    policy,
                    ExecMode::Exhaustive,
                    64,
                );
                assert_runs_equal(&r, &p, &format!("{label} (vs reference)"));
                let d = run_app(
                    ExecEngine::Decoded,
                    &app,
                    pattern,
                    policy,
                    ExecMode::Exhaustive,
                    64,
                );
                assert_runs_equal(&d, &p, &format!("{label} (vs decoded)"));
            }
        }
    }
}

#[test]
fn every_app_every_pattern_replay_matches_sampled() {
    for app in isp_filters::apps::all_apps() {
        for pattern in BorderPattern::ALL {
            let p = run_app(
                ExecEngine::Replay,
                &app,
                pattern,
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Sampled,
                256,
            );
            let r = run_app(
                ExecEngine::Reference,
                &app,
                pattern,
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Sampled,
                256,
            );
            assert_runs_equal(&r, &p, &format!("{} {pattern} sampled", app.name));
        }
    }
}

/// Common prologue: global coordinates guarded against the image bounds.
struct Prologue {
    b: IrBuilder,
    exit: BlockId,
    gx: VReg,
    gy: VReg,
    w: VReg,
}

fn prologue(name: &str) -> Prologue {
    let mut b = IrBuilder::new(name, 2);
    let pw = b.param("width", Ty::S32);
    let ph = b.param("height", Ty::S32);
    let body = b.create_block("body");
    let exit = b.create_block("exit");
    let tx = b.sreg(SReg::TidX);
    let ty = b.sreg(SReg::TidY);
    let bx = b.sreg(SReg::CtaIdX);
    let by = b.sreg(SReg::CtaIdY);
    let ntx = b.sreg(SReg::NTidX);
    let nty = b.sreg(SReg::NTidY);
    let gx = b.mad(Ty::S32, bx, ntx, tx);
    let gy = b.mad(Ty::S32, by, nty, ty);
    let w = b.ld_param(pw);
    let h = b.ld_param(ph);
    let px = b.setp(CmpOp::Lt, gx, w);
    let py = b.setp(CmpOp::Lt, gy, h);
    let p = b.bin(BinOp::And, Ty::Pred, px, py);
    b.cond_br(p, body, exit);
    b.switch_to(body);
    Prologue { b, exit, gx, gy, w }
}

/// A kernel whose control flow depends on the loaded data: lanes with
/// positive input take one path, the rest the other. Any block whose
/// sign pattern differs from the recorded block's must miss the branch
/// guard and deopt.
fn data_dependent_kernel() -> Kernel {
    let Prologue {
        mut b,
        exit,
        gx,
        gy,
        w,
    } = prologue("datadep");
    let pos = b.create_block("pos");
    let neg = b.create_block("neg");
    let addr = b.mad(Ty::S32, gy, w, gx);
    let v = b.ld(Ty::F32, 0, addr);
    let c = b.setp(CmpOp::Gt, v, 0.0f32);
    b.cond_br(c, pos, neg);
    b.switch_to(pos);
    let doubled = b.bin(BinOp::Add, Ty::F32, v, v);
    b.st(1, addr, doubled);
    b.br(exit);
    b.switch_to(neg);
    let negated = b.un(UnOp::Neg, Ty::F32, v);
    b.st(1, addr, negated);
    b.br(exit);
    b.switch_to(exit);
    b.ret();
    b.finish()
}

/// Every block stores into the same small address window, so the final
/// pixel values depend on the write-journal order across blocks.
fn conflicting_writes_kernel() -> Kernel {
    let Prologue {
        mut b,
        exit,
        gx,
        gy,
        w,
    } = prologue("conflict");
    let addr = b.mad(Ty::S32, gy, w, gx);
    let v = b.ld(Ty::F32, 0, addr);
    let slot = b.bin(BinOp::And, Ty::S32, addr, 63);
    b.st(1, slot, v);
    b.br(exit);
    b.switch_to(exit);
    b.ret();
    b.finish()
}

/// Launch `kernel` under every engine and assert bit-identical reports,
/// per-class attribution, and pixels. Blocks are classified into `classes`
/// groups so sibling blocks share (and replay) one recorded trace. Returns
/// the `Gpu` so callers can inspect its trace stats.
fn assert_engines_agree(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[ParamValue],
    input: &[f32],
    strategy: ExecStrategy,
    classes: u32,
    label: &str,
) -> (Gpu, LaunchReport) {
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let classifier = move |bx: u32, by: u32| (bx + 2 * by) % classes;
    let n = input.len();
    let mut results: Vec<(LaunchReport, Vec<f32>)> = Vec::new();
    for engine in ENGINES {
        let mut bufs = vec![DeviceBuffer::from_f32(input), DeviceBuffer::zeroed(n)];
        let report = gpu
            .launch_engine(
                kernel,
                cfg,
                params,
                &mut bufs,
                SimMode::ExhaustiveClassified {
                    classifier: &classifier,
                },
                strategy,
                engine,
            )
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        results.push((report, bufs[1].to_f32()));
    }
    let (r_report, r_pixels) = &results[0];
    for (engine, (report, pixels)) in ENGINES.iter().zip(&results).skip(1) {
        assert_eq!(r_report.counters, report.counters, "{label} {engine:?}");
        assert_eq!(
            r_report.timing.cycles, report.timing.cycles,
            "{label} {engine:?} cycles"
        );
        assert_eq!(
            r_report.per_class, report.per_class,
            "{label} {engine:?} per-class"
        );
        let bits_r: Vec<u32> = r_pixels.iter().map(|v| v.to_bits()).collect();
        let bits_e: Vec<u32> = pixels.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_r, bits_e, "{label} {engine:?} pixels (bit compare)");
    }
    let (replay_report, _) = results.pop().unwrap();
    (gpu, replay_report)
}

#[test]
fn data_dependent_branch_deopts_and_stays_exact() {
    let kernel = data_dependent_kernel();
    let (w, h) = (64usize, 8usize);
    let cfg = LaunchConfig::for_image(w, h, (32, 4));
    assert_eq!(cfg.grid, (2, 2));
    let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
    // Block (0,0) (x 0..32, y 0..4) sees all-positive inputs and records a
    // trace whose branch outcome is "every lane true". The other blocks mix
    // signs, so their predicate lanes cannot reproduce the recorded outcome:
    // the guard must miss and the block must deopt — with bit-exact results.
    let input: Vec<f32> = (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            if x < 32 && y < 4 {
                1.0 + (i % 5) as f32
            } else if (x + y) % 2 == 0 {
                0.5
            } else {
                -1.5 - (i % 3) as f32
            }
        })
        .collect();
    // One class and the serial strategy: block (0,0) deterministically
    // records; every different-signed block deopts.
    let (gpu, report) = assert_engines_agree(
        &kernel,
        cfg,
        &params,
        &input,
        ExecStrategy::Serial,
        1,
        "datadep",
    );
    let stats = gpu.trace_stats();
    assert!(
        stats.deopted >= 1,
        "mixed-sign blocks must deopt: {stats:?}"
    );
    assert_eq!(
        stats.recorded + stats.replayed + stats.deopted,
        cfg.total_blocks(),
        "every block is accounted for"
    );
    let total: u64 = report
        .per_class_trace
        .iter()
        .map(|(_, s)| s.recorded + s.replayed + s.deopted)
        .sum();
    assert_eq!(total, cfg.total_blocks(), "per-class trace covers the grid");
}

#[test]
fn deopts_are_counted_in_engine_cache_stats() {
    let kernel = data_dependent_kernel();
    let engine = Engine::new(DeviceSpec::gtx680());
    assert_eq!(engine.cache_stats().trace_deopts, 0);
    let (w, h) = (64usize, 8usize);
    let cfg = LaunchConfig::for_image(w, h, (32, 4));
    let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
    let input: Vec<f32> = (0..w * h).map(|i| (i % 7) as f32 - 3.0).collect();
    let mut bufs = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
    engine
        .gpu()
        .launch_with(
            &kernel,
            cfg,
            &params,
            &mut bufs,
            SimMode::Exhaustive,
            ExecStrategy::Serial,
        )
        .unwrap();
    let stats = engine.cache_stats();
    assert!(stats.trace_recorded >= 1, "{stats:?}");
    assert!(stats.trace_deopts >= 1, "{stats:?}");
}

#[test]
fn conflicting_writes_replay_in_dispatch_order() {
    let kernel = conflicting_writes_kernel();
    let (w, h) = (64usize, 16usize);
    let cfg = LaunchConfig::for_image(w, h, (32, 4));
    let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
    let input: Vec<f32> = (0..w * h).map(|i| i as f32).collect();
    // All blocks funnel their stores into out[0..64]: identical pixels
    // across engines proves the replayed write journal preserves dispatch
    // order, under both scheduling strategies. Two classes over a (2,4)
    // grid make six of the eight blocks replay a sibling's trace.
    for strategy in [ExecStrategy::Parallel, ExecStrategy::Serial] {
        let (gpu, _) = assert_engines_agree(&kernel, cfg, &params, &input, strategy, 2, "conflict");
        if strategy == ExecStrategy::Serial {
            let stats = gpu.trace_stats();
            assert_eq!(stats.recorded, 2, "{stats:?}");
            assert_eq!(stats.replayed, 6, "{stats:?}");
            assert_eq!(stats.deopted, 0, "{stats:?}");
        }
    }
}

/// Build a loop-free two-buffer kernel from a random op tape (same shape as
/// `decoded_diff`'s generator: bounds guard, op chain, optional divergent
/// odd/even store).
fn prop_kernel(ops: &[(u8, i32)], divergent: bool) -> Kernel {
    let Prologue {
        mut b,
        exit,
        gx,
        gy,
        w,
    } = prologue("prop");
    let addr = b.mad(Ty::S32, gy, w, gx);
    let mut v = b.ld(Ty::F32, 0, addr);
    let mut iv = addr;
    for &(code, raw) in ops {
        let fi = (raw % 17) as f32 * 0.25 - 2.0;
        let ii = raw % 13;
        match code % 8 {
            0 => v = b.bin(BinOp::Add, Ty::F32, v, fi),
            1 => v = b.bin(BinOp::Sub, Ty::F32, fi, v),
            2 => v = b.bin(BinOp::Mul, Ty::F32, v, fi),
            3 => v = b.bin(BinOp::Min, Ty::F32, v, fi),
            4 => v = b.un(UnOp::Abs, Ty::F32, v),
            5 => {
                let c = b.setp(CmpOp::Gt, v, fi);
                v = b.selp(Ty::F32, v, fi, c);
            }
            6 => {
                iv = b.bin(BinOp::Xor, Ty::S32, iv, ii);
                let f = b.cvt(Ty::F32, iv);
                v = b.bin(BinOp::Add, Ty::F32, v, f);
            }
            _ => {
                iv = b.bin(BinOp::And, Ty::S32, iv, 0x3fff);
                let f = b.cvt(Ty::F32, iv);
                v = b.bin(BinOp::Max, Ty::F32, v, f);
            }
        }
    }
    if divergent {
        let even_blk = b.create_block("even");
        let odd_blk = b.create_block("odd");
        let bit = b.bin(BinOp::And, Ty::S32, gx, 1);
        let c = b.setp(CmpOp::Eq, bit, 0);
        b.cond_br(c, even_blk, odd_blk);
        b.switch_to(even_blk);
        b.st(1, addr, v);
        b.br(exit);
        b.switch_to(odd_blk);
        let neg = b.un(UnOp::Neg, Ty::F32, v);
        b.st(1, addr, neg);
        b.br(exit);
    } else {
        b.st(1, addr, v);
        b.br(exit);
    }
    b.switch_to(exit);
    b.ret();
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated loop-free kernels execute bit-identically under all three
    /// engines at the launch level — counters, cycles, per-class
    /// attribution, and pixels — with ragged edges exercising both clean
    /// replays and guard-miss deopts.
    #[test]
    fn generated_kernels_replay_bit_identically(
        tape in proptest::collection::vec((0u8..8, -1000i32..1000), 8),
        len in 0usize..8,
        divergent in 0u8..2,
        w_off in 0i32..12,
        h_off in 0i32..4,
    ) {
        let kernel = prop_kernel(&tape[..len], divergent == 1);
        let cfg = LaunchConfig { grid: (2, 2), block: (32, 4) };
        let (w, h) = (64 - w_off, 8 - h_off);
        let params = [ParamValue::I32(w), ParamValue::I32(h)];
        let n = 2 * 32 * 2 * 4;
        let input: Vec<f32> = (0..n).map(|i| (i % 23) as f32 * 0.5 - 5.0).collect();
        assert_engines_agree(&kernel, cfg, &params, &input, ExecStrategy::Parallel, 2, "prop");
    }
}
