//! Review scratch: min(ctaid.x, K) compared against ctaid.x, branch on it.

use isp_ir::{BinOp, CmpOp, IrBuilder, SReg, Ty};
use isp_sim::{
    DeviceBuffer, DeviceSpec, ExecEngine, ExecStrategy, Gpu, LaunchConfig, ParamValue, SimMode,
};

fn kernel() -> isp_ir::Kernel {
    let mut b = IrBuilder::new("clamp_branch", 1);
    let bx = b.sreg(SReg::CtaIdX);
    let tid = b.sreg(SReg::TidX);
    // c = min(bx, 3): claimed affine coeff 1 at record block 0 (a wins).
    let c = b.bin(BinOp::Min, Ty::S32, bx, 3i32);
    // p = (c < bx): claimed block-invariant (coeff diff 0) -> empty pin.
    let p = b.setp(CmpOp::Lt, c, bx);
    let t = b.create_block("t");
    let f = b.create_block("f");
    let done = b.create_block("done");
    // addr = bx*32 + tid (affine, rebased store address)
    let addr = b.mad(Ty::S32, bx, 32i32, tid);
    b.cond_br(p, t, f);
    b.switch_to(t);
    b.st(0, addr, 111.0f32);
    b.br(done);
    b.switch_to(f);
    b.st(0, addr, 222.0f32);
    b.br(done);
    b.switch_to(done);
    b.ret();
    b.finish()
}

#[test]
fn review_repro_min_pin_interaction() {
    let k = kernel();
    let errs = isp_ir::validate::validate(&k);
    assert!(errs.is_empty(), "{errs:?}");
    let cfg = LaunchConfig {
        grid: (8, 1),
        block: (32, 1),
    };
    let mut outs = Vec::new();
    for engine in [ExecEngine::Decoded, ExecEngine::Replay] {
        let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
        let mut bufs = vec![DeviceBuffer::zeroed(8 * 32)];
        let params: [ParamValue; 0] = [];
        gpu.launch_with(
            &k,
            cfg,
            &params,
            &mut bufs,
            SimMode::Exhaustive,
            ExecStrategy::Serial,
        )
        .unwrap();
        outs.push(bufs[0].to_f32());
    }
    assert_eq!(outs[0], outs[1], "decoded vs replay pixels");
}

/// Forced-pathological optimizer case: a kernel hand-built to tempt every
/// pass into an unsound rewrite at once — the same float expression in two
/// *sibling* branches (GVN across non-dominating blocks would merge them),
/// stores fed by cross-block value chains (DCE must keep every transitive
/// input of a store), a dead arithmetic chain (DCE must remove it), a
/// constant predicate feeding a `selp` (const-pred collapse), and a
/// power-of-two division of a special register (strength reduction with a
/// non-negativity proof). The optimized kernel must validate, hit the fixed
/// point, and stay bit-identical to the unoptimized one on both engines.
#[test]
fn optimizer_pathological_gvn_dce_case() {
    use isp_ir::opt::{optimize_with_stats, OptConfig};
    use isp_ir::BinOp as B;

    let total = 8 * 32usize;
    let mut b = IrBuilder::new("opt_pathological", 2);
    let bx = b.sreg(SReg::CtaIdX);
    let tid = b.sreg(SReg::TidX);
    let idx = b.mad(Ty::S32, bx, 32i32, tid);
    let v = b.ld(Ty::F32, 0, idx);
    let p = b.setp(CmpOp::Lt, tid, 16i32);
    let t = b.create_block("t");
    let f = b.create_block("f");
    let done = b.create_block("done");
    b.cond_br(p, t, f);
    b.switch_to(t);
    // v+v here ...
    let s1 = b.bin(B::Add, Ty::F32, v, v);
    b.st(1, idx, s1);
    b.br(done);
    b.switch_to(f);
    // ... and the *same* v+v in the sibling: same value-number key, but
    // neither block dominates the other, so GVN must not merge them.
    let s2 = b.bin(B::Add, Ty::F32, v, v);
    let s3 = b.bin(B::Mul, Ty::F32, s2, 2.0f32);
    b.st(1, idx, s3);
    b.br(done);
    b.switch_to(done);
    // Dead chain: feeds nothing — DCE must sweep it.
    let d = b.bin(B::Mul, Ty::S32, idx, 8i32);
    let _dead = b.bin(B::Add, Ty::S32, d, 1i32);
    // Constant predicate + selp: collapses to the taken arm.
    let q = b.setp(CmpOp::Lt, 3i32, 5i32);
    let w = b.selp(Ty::F32, 1.5f32, 2.5f32, q);
    // tid / 4: special registers are provably non-negative, so this may
    // become a shift — and must still agree with round-toward-zero.
    let half = b.bin(B::Div, Ty::S32, tid, 4i32);
    let halff = b.cvt(Ty::F32, half);
    let mix = b.bin(B::Add, Ty::F32, w, halff);
    let addr2 = b.bin(B::Add, Ty::S32, idx, total as i32);
    b.st(1, addr2, mix);
    b.ret();
    let k = b.finish();

    let errs = isp_ir::validate::validate(&k);
    assert!(errs.is_empty(), "unoptimized: {errs:?}");
    let (opt, stats) = optimize_with_stats(&k, OptConfig::pipeline());
    let errs = isp_ir::validate::validate(&opt);
    assert!(errs.is_empty(), "optimized: {errs:?}");
    assert!(stats.reached_fixed_point, "{stats:?}");
    assert!(
        stats.dce_removed >= 2,
        "dead chain must be swept: {stats:?}"
    );
    assert!(
        stats.strength_rewrites >= 1,
        "tid/4 should strength-reduce: {stats:?}"
    );
    assert!(
        opt.static_len() < k.static_len(),
        "pipeline should shrink the kernel ({} -> {})",
        k.static_len(),
        opt.static_len()
    );

    let cfg = LaunchConfig {
        grid: (8, 1),
        block: (32, 1),
    };
    let input: Vec<f32> = (0..total).map(|i| (i as f32) * 0.25 - 17.5).collect();
    let mut outs = Vec::new();
    for kernel in [&k, &opt] {
        for engine in [ExecEngine::Decoded, ExecEngine::Replay] {
            let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
            let mut bufs = vec![
                DeviceBuffer::from_f32(&input),
                DeviceBuffer::zeroed(2 * total),
            ];
            let params: [ParamValue; 0] = [];
            gpu.launch_with(
                kernel,
                cfg,
                &params,
                &mut bufs,
                SimMode::Exhaustive,
                ExecStrategy::Serial,
            )
            .unwrap();
            outs.push(bufs[1].to_f32());
        }
    }
    for (i, out) in outs.iter().enumerate().skip(1) {
        assert_eq!(&outs[0], out, "run {i} diverged from unoptimized decoded");
    }
}
