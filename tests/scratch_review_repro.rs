//! Review scratch: min(ctaid.x, K) compared against ctaid.x, branch on it.

use isp_ir::{BinOp, CmpOp, IrBuilder, SReg, Ty};
use isp_sim::{
    DeviceBuffer, DeviceSpec, ExecEngine, ExecStrategy, Gpu, LaunchConfig, ParamValue, SimMode,
};

fn kernel() -> isp_ir::Kernel {
    let mut b = IrBuilder::new("clamp_branch", 1);
    let bx = b.sreg(SReg::CtaIdX);
    let tid = b.sreg(SReg::TidX);
    // c = min(bx, 3): claimed affine coeff 1 at record block 0 (a wins).
    let c = b.bin(BinOp::Min, Ty::S32, bx, 3i32);
    // p = (c < bx): claimed block-invariant (coeff diff 0) -> empty pin.
    let p = b.setp(CmpOp::Lt, c, bx);
    let t = b.create_block("t");
    let f = b.create_block("f");
    let done = b.create_block("done");
    // addr = bx*32 + tid (affine, rebased store address)
    let addr = b.mad(Ty::S32, bx, 32i32, tid);
    b.cond_br(p, t, f);
    b.switch_to(t);
    b.st(0, addr, 111.0f32);
    b.br(done);
    b.switch_to(f);
    b.st(0, addr, 222.0f32);
    b.br(done);
    b.switch_to(done);
    b.ret();
    b.finish()
}

#[test]
fn review_repro_min_pin_interaction() {
    let k = kernel();
    let errs = isp_ir::validate::validate(&k);
    assert!(errs.is_empty(), "{errs:?}");
    let cfg = LaunchConfig {
        grid: (8, 1),
        block: (32, 1),
    };
    let mut outs = Vec::new();
    for engine in [ExecEngine::Decoded, ExecEngine::Replay] {
        let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
        let mut bufs = vec![DeviceBuffer::zeroed(8 * 32)];
        let params: [ParamValue; 0] = [];
        gpu.launch_with(
            &k,
            cfg,
            &params,
            &mut bufs,
            SimMode::Exhaustive,
            ExecStrategy::Serial,
        )
        .unwrap();
        outs.push(bufs[0].to_f32());
    }
    assert_eq!(outs[0], outs[1], "decoded vs replay pixels");
}
