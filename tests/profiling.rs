//! Integration tests for the per-region profiling layer (PR 2): counter
//! attribution must be exact, the JSON export must carry the model
//! comparison, and the analytic check-count table must agree with what the
//! lowering actually emits.

use isp_bench::prof::{profile_kernel, profile_to_json};
use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::{Expr, KernelSpec};
use isp_exec::{bench_image, Engine, Request, PAPER_BLOCK};
use isp_filters::by_name;
use isp_image::{naive_checks_per_access, BorderPattern};
use isp_ir::InstrCategory;
use isp_sim::{DeviceSpec, PerfCounters};

/// Exhaustive per-region attribution is exact: the nine per-region counter
/// sets coming out of a full engine run merge bit-identically back to the
/// aggregate counters — no block is lost, double-counted, or approximated.
#[test]
fn per_region_counters_merge_bit_identically_to_aggregate() {
    let engine = Engine::new(DeviceSpec::gtx680());
    let app = by_name("bilateral").unwrap();
    let req = Request::paper(
        app,
        BorderPattern::Mirror,
        96,
        Policy::AlwaysIsp(Variant::IspBlock),
    )
    .exhaustive();
    let outcome = engine.run(&req).expect("exhaustive run");

    assert_eq!(outcome.per_region.len(), 9, "all nine regions attributed");
    let mut merged = PerfCounters::new();
    for (_, c) in &outcome.per_region {
        merged.merge(c);
    }
    assert_eq!(
        merged, outcome.counters,
        "per-region counters must merge exactly to the aggregate"
    );
}

/// The JSON metrics export for the paper's gaussian/Clamp configuration on
/// GTX 680 carries per-region measured counts, the model's N_ISP total, and
/// the per-region residuals.
#[test]
fn json_export_contains_per_region_counts_model_and_residuals() {
    let p = profile_kernel(
        &DeviceSpec::gtx680(),
        &isp_filters::gaussian::spec(3),
        BorderPattern::Clamp,
        &bench_image(128),
        &[],
        PAPER_BLOCK,
    )
    .expect("profile");
    let json = profile_to_json(&p).render_pretty();
    assert!(json.contains("\"per_region\""));
    assert!(json.contains("\"warp_instructions\""));
    assert!(json.contains("\"n_isp\""));
    assert!(json.contains("\"residual\""));
    assert!(json.contains("\"device\": \"GTX680\""));
    // On aligned geometry the IR-statistics model is exact.
    for r in &p.regions {
        assert_eq!(
            r.counters.warp_instructions as f64, r.predicted_warp_instructions,
            "{:?}: model must be exact on aligned blocks",
            r.region
        );
    }
}

/// `naive_checks_per_access` is not folklore: for every pattern it must
/// equal the number of comparison/clamp instructions the lowering actually
/// emits per access. We compile a single-access kernel and count the
/// comparison-class instructions (`setp` + `min` + `max`) in the naive
/// variant's static histogram, minus the two `setp` of the prologue edge
/// guard that every kernel carries regardless of pattern.
#[test]
fn naive_checks_per_access_matches_lowered_ir() {
    let engine = Engine::new(DeviceSpec::gtx680());
    for pattern in [
        BorderPattern::Clamp,
        BorderPattern::Mirror,
        BorderPattern::Repeat,
        BorderPattern::Constant,
    ] {
        // One bordered access at (1,1): every comparison beyond the
        // prologue guard is border-handling cost for exactly one access.
        let spec = KernelSpec::new("single_access", 1, vec![], Expr::at(1, 1));
        let ck = engine.compile(&spec, pattern, Variant::IspBlock);
        let h = &ck.naive.static_histogram;
        let comparisons =
            h.get(InstrCategory::Setp) + h.get(InstrCategory::Min) + h.get(InstrCategory::Max);
        let guard = 2; // prologue `gid < size` edge guard, one setp per axis
        assert_eq!(
            (comparisons - guard) as usize,
            naive_checks_per_access(pattern),
            "{pattern}: analytic check count must match the lowered IR"
        );
    }
}
