//! Serving-layer invariants, end to end.
//!
//! 1. **Batching is invisible to results**: a batch of N mixed-policy
//!    requests through one engine is bit-identical — pixels, counters,
//!    per-region attribution, per-region trace journals — to the same N
//!    requests run sequentially on an identically configured engine, and
//!    (modulo trace-reuse counters, which legitimately differ with cache
//!    warmth) to N runs on fully cold engines. Covers all five filters
//!    times all four border patterns.
//! 2. **Backpressure is deterministic**: a burst beyond the admission cap
//!    yields exact admitted/rejected counts and a bounded queue depth,
//!    identical across repeated runs.

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_exec::{Engine, Outcome, Request};
use isp_filters::all_apps;
use isp_image::BorderPattern;
use isp_serve::{Arrivals, ServeConfig, ServeReport, Server, Workload};
use isp_sim::DeviceSpec;

const PATTERNS: [BorderPattern; 4] = [
    BorderPattern::Clamp,
    BorderPattern::Mirror,
    BorderPattern::Repeat,
    BorderPattern::Constant,
];

const POLICIES: [Policy; 3] = [
    Policy::Naive,
    Policy::AlwaysIsp(Variant::IspBlock),
    Policy::Model(Variant::IspBlock),
];

/// Every app x pattern, policies cycled so the batch mixes them.
fn mixed_requests(size: usize) -> Vec<Request> {
    let mut reqs = Vec::new();
    for (i, app) in all_apps().into_iter().enumerate() {
        for (j, &pattern) in PATTERNS.iter().enumerate() {
            let policy = POLICIES[(i * PATTERNS.len() + j) % POLICIES.len()];
            reqs.push(Request::paper(app.clone(), pattern, size, policy).exhaustive());
        }
    }
    reqs
}

fn assert_outcomes_equal(a: &Outcome, b: &Outcome, label: &str, compare_trace: bool) {
    assert_eq!(a.total_cycles, b.total_cycles, "{label}: cycles");
    assert_eq!(a.counters, b.counters, "{label}: counters");
    assert_eq!(a.stage_variants, b.stage_variants, "{label}: variants");
    assert_eq!(a.per_region, b.per_region, "{label}: per-region");
    assert_eq!(
        a.latency.exec_cycles, b.latency.exec_cycles,
        "{label}: exec cycles"
    );
    if compare_trace {
        assert_eq!(
            a.per_region_trace, b.per_region_trace,
            "{label}: trace journals"
        );
    }
    match (&a.image, &b.image) {
        (Some(x), Some(y)) => assert_eq!(x.raw(), y.raw(), "{label}: pixels"),
        (None, None) => {}
        _ => panic!("{label}: one run produced pixels, the other did not"),
    }
}

#[test]
fn batched_execution_is_bit_identical_to_sequential() {
    let size = 64;
    let mut reqs = mixed_requests(size);
    assert_eq!(reqs.len(), 20, "five filters x four patterns");
    // Re-enqueue the four gaussian requests so the batch contains
    // compatible pairs: their second runs must replay the first runs'
    // traces from block 0 (cross-launch reuse).
    reqs.extend(reqs[..4].to_vec());

    let batch_engine = Engine::new(DeviceSpec::gtx680());
    let batched = batch_engine.run_batch(&reqs).expect("batch runs");

    // Same requests, same order, sequentially on an identically
    // configured engine: cache warmth evolves identically, so even the
    // trace-reuse journals must match bit for bit.
    let seq_engine = Engine::new(DeviceSpec::gtx680());
    for (i, (req, b)) in reqs.iter().zip(&batched).enumerate() {
        let s = seq_engine.run(req).expect("sequential runs");
        let label = format!("{} {} #{i} (warm)", req.app.name, req.pattern);
        assert_outcomes_equal(b, &s, &label, true);
    }

    // Fully cold engines: results must still match (trace-reuse counters
    // may not — a cold engine records where a warm one replays).
    for (i, (req, b)) in reqs.iter().zip(&batched).enumerate() {
        let cold = Engine::new(DeviceSpec::gtx680());
        let c = cold.run(req).expect("cold runs");
        let label = format!("{} {} #{i} (cold)", req.app.name, req.pattern);
        assert_outcomes_equal(b, &c, &label, false);
    }

    // The batch itself must have exercised cross-launch reuse, otherwise
    // this test is not testing what it claims to.
    assert!(
        batch_engine.cache_stats().trace_cross_launch_hits > 0,
        "batch must replay traces across compatible launches"
    );
}

fn burst_workload() -> Workload {
    Workload {
        seed: 5,
        requests: 16,
        arrivals: Arrivals::Open {
            rate_rps: 1.0e6,
            exponential: false,
        },
        mix: vec![Request::paper(
            all_apps().remove(0),
            BorderPattern::Clamp,
            64,
            Policy::Model(Variant::IspBlock),
        )],
    }
}

fn summary(r: &ServeReport) -> (u64, u64, usize, u64, Vec<(u64, u64)>) {
    (
        r.admitted,
        r.rejected,
        r.max_queue_depth,
        r.makespan_ns,
        r.completed.iter().map(|c| (c.id, c.done_ns)).collect(),
    )
}

#[test]
fn admission_bounds_queue_depth_deterministically() {
    let wl = burst_workload();
    let cfg = || ServeConfig::baseline().with_queue_cap(3);
    let a = Server::new(cfg()).run(&wl);
    let b = Server::new(cfg()).run(&wl);

    assert_eq!(summary(&a), summary(&b), "repeated runs must be identical");
    assert!(a.max_queue_depth <= 3, "cap must bound the queue");
    assert!(a.rejected > 0, "the burst must overflow the queue");
    assert_eq!(a.admitted + a.rejected, 16);
    assert_eq!(a.completed.len() as u64, a.admitted);
    // Queue waits are attributed in device cycles on every completion.
    assert!(a.completed.iter().any(|c| c.latency.queue_cycles > 0));
}
