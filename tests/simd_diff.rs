//! Differential tests for the SIMD warp-row kernels and the
//! superinstruction fusion pass: the AVX2 backend must be bit-identical to
//! the scalar loops over adversarial operands (NaN payloads, sNaNs,
//! denormals, shift counts >= 32, `i32::MIN * -1`, signed zeros), and a
//! fused decoding must be observationally identical to an unfused one on
//! all three engines — pixels, counters, cycles, per-region attribution,
//! and the rendered `==PROF==` report.

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_exec::{Engine, Outcome, Request};
use isp_image::BorderPattern;
use isp_ir::{BinOp, CmpOp};
use isp_sim::rows;
use isp_sim::{set_simd_enabled, simd_enabled, DeviceSpec, ExecEngine, WARP};
use proptest::prelude::*;
use std::sync::Mutex;

/// Tests that flip the process-wide SIMD toggle serialise on this lock and
/// restore the prior state, so they can never race each other (or bias a
/// concurrently running engine-level test, whose results must not depend
/// on the toggle anyway — that is the invariant under test).
static SIMD_LOCK: Mutex<()> = Mutex::new(());

/// Hold the lock, force the toggle, run, restore. Restores (and releases a
/// poisoned lock) even when `f` panics, so one failing test cannot cascade
/// poison-panics or a stuck toggle into unrelated tests.
fn with_simd<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_simd_enabled(self.0);
        }
    }
    let _g = SIMD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _r = Restore(simd_enabled());
    set_simd_enabled(on);
    f()
}

/// Bit patterns chosen to break a lazy vector implementation: every IEEE
/// class (signed zeros, denormals, infinities, quiet and signalling NaNs
/// with payloads), integer edge cases (`i32::MIN`, `-1` for the
/// `MIN / -1` and `MIN % -1` traps), and shift counts at and past 32
/// (scalar semantics mask with `& 31`).
const ADVERSARIAL: [u32; 24] = [
    0x0000_0000, // +0.0 / 0
    0x8000_0000, // -0.0 / i32::MIN
    0x0000_0001, // smallest denormal / 1
    0x807f_ffff, // negative denormal
    0x0080_0000, // smallest normal
    0x7f80_0000, // +inf
    0xff80_0000, // -inf
    0x7fc0_0000, // canonical qNaN
    0x7fc0_0001, // qNaN with payload
    0x7f80_0001, // sNaN
    0xffc0_0000, // negative qNaN
    0xff80_0001, // negative sNaN
    0xffff_ffff, // -1 / NaN
    0x3f80_0000, // 1.0
    0xbf80_0000, // -1.0
    0x4049_0fdb, // pi
    0x7f7f_ffff, // f32::MAX
    0x0000_0020, // 32 (shift-count edge)
    0x0000_0021, // 33
    0x0000_003f, // 63
    0x8000_0020, // negative shift count
    0x7fff_ffff, // i32::MAX
    0x0000_0007, // small int
    0xdead_beef, // junk
];

/// Fill three rows (a, b, c at slots 1, 2, 3) from the adversarial pool,
/// rotated differently per row so every pairing occurs across seeds.
fn fill_rows(regs: &mut [u32], seed: usize) {
    for l in 0..WARP {
        regs[WARP + l] = ADVERSARIAL[(l + seed) % ADVERSARIAL.len()];
        regs[2 * WARP + l] = ADVERSARIAL[(l * 7 + seed * 3 + 1) % ADVERSARIAL.len()];
        regs[3 * WARP + l] = ADVERSARIAL[(l * 11 + seed * 5 + 2) % ADVERSARIAL.len()];
    }
}

/// Run `kernel` once with SIMD off and once with SIMD on against identical
/// register files; the whole file must match bit-for-bit afterwards.
fn assert_rows_identical(label: &str, seed: usize, kernel: impl Fn(&mut [u32])) {
    let mut scalar = vec![0u32; 8 * WARP];
    fill_rows(&mut scalar, seed);
    let mut simd = scalar.clone();
    with_simd(false, || kernel(&mut scalar));
    with_simd(true, || kernel(&mut simd));
    assert_eq!(scalar, simd, "{label} seed {seed}: scalar vs SIMD bits");
}

#[test]
fn bin_ops_scalar_simd_bit_identical() {
    use BinOp::*;
    for seed in 0..ADVERSARIAL.len() {
        for op in [Add, Sub, Mul, Div, Rem, Min, Max, And, Or, Xor, Shl, Shr] {
            assert_rows_identical(&format!("bin_i {op:?}"), seed, |r| {
                rows::bin_i(op, r, 0, WARP, 2 * WARP)
            });
            // Destination aliasing a source (rows are slot-aligned, so
            // aliases are exact overlaps — the hardest case for an
            // interleaved vector kernel).
            assert_rows_identical(&format!("bin_i {op:?} aliased"), seed, |r| {
                rows::bin_i(op, r, WARP, WARP, 2 * WARP)
            });
        }
        for op in [Add, Sub, Mul, Div, Rem, Min, Max] {
            assert_rows_identical(&format!("bin_f {op:?}"), seed, |r| {
                rows::bin_f(op, r, 0, WARP, 2 * WARP)
            });
            assert_rows_identical(&format!("bin_f {op:?} aliased"), seed, |r| {
                rows::bin_f(op, r, 2 * WARP, WARP, 2 * WARP)
            });
        }
    }
}

#[test]
fn mad_cvt_setp_scalar_simd_bit_identical() {
    for seed in 0..ADVERSARIAL.len() {
        assert_rows_identical("mad_i", seed, |r| {
            rows::mad_i(r, 0, WARP, 2 * WARP, 3 * WARP)
        });
        assert_rows_identical("mad_f", seed, |r| {
            rows::mad_f(r, 0, WARP, 2 * WARP, 3 * WARP)
        });
        assert_rows_identical("mad_i acc-alias", seed, |r| {
            rows::mad_i(r, 3 * WARP, WARP, 2 * WARP, 3 * WARP)
        });
        assert_rows_identical("cvt_if", seed, |r| rows::cvt_if(r, 0, WARP));
        for cmp in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_rows_identical(&format!("set_p_i {cmp:?}"), seed, |r| {
                rows::set_p_i(cmp, r, 0, WARP, 2 * WARP)
            });
            // Float compares must treat every NaN (any payload) unordered.
            assert_rows_identical(&format!("set_p_f {cmp:?}"), seed, |r| {
                rows::set_p_f(cmp, r, 0, WARP, 2 * WARP)
            });
        }
    }
}

#[test]
fn fused_kernels_scalar_simd_bit_identical() {
    for seed in 0..ADVERSARIAL.len() {
        // Chained: op2 consumes op1's destination, op3 consumes op2's —
        // exactly how the superinstructions are matched.
        assert_rows_identical("mad2_i", seed, |r| {
            rows::mad2_i(
                r,
                4 * WARP,
                WARP,
                2 * WARP,
                3 * WARP,
                5 * WARP,
                4 * WARP,
                WARP,
                2 * WARP,
            )
        });
        assert_rows_identical("mad2_f", seed, |r| {
            rows::mad2_f(
                r,
                4 * WARP,
                WARP,
                2 * WARP,
                3 * WARP,
                5 * WARP,
                4 * WARP,
                WARP,
                2 * WARP,
            )
        });
        assert_rows_identical("mul_add_f", seed, |r| {
            rows::mul_add_f(r, 4 * WARP, WARP, 2 * WARP, 5 * WARP, 4 * WARP, 3 * WARP)
        });
        assert_rows_identical("mad2_i_min", seed, |r| {
            rows::mad2_i_min(
                r,
                4 * WARP,
                WARP,
                2 * WARP,
                3 * WARP,
                5 * WARP,
                4 * WARP,
                WARP,
                2 * WARP,
                6 * WARP,
                4 * WARP,
                5 * WARP,
            )
        });
    }
}

#[test]
fn gather_and_tx_count_scalar_simd_identical() {
    let buf: Vec<u32> = (0..4096u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    let cases: [[u32; WARP]; 5] = [
        std::array::from_fn(|l| l as u32),               // unit stride
        std::array::from_fn(|l| (l * 97) as u32 % 4096), // scattered
        std::array::from_fn(|_| 17),                     // fully convergent
        std::array::from_fn(|l| 4095 - (l as u32 % 2)),  // top edge
        std::array::from_fn(|l| (l as u32 / 8) * 1024),  // segment steps
    ];
    for addrs in &cases {
        let mut s = [0u32; WARP];
        let mut v = [0u32; WARP];
        // SAFETY: every address above is within `buf`.
        with_simd(false, || unsafe { rows::gather_row(&mut s, addrs, &buf) });
        with_simd(true, || unsafe { rows::gather_row(&mut v, addrs, &buf) });
        assert_eq!(s, v, "gather {addrs:?}");

        // The vector transaction counter must agree with a naive segment
        // count on monotonic in-bounds rows.
        let mut sorted = *addrs;
        sorted.sort_unstable();
        let naive = {
            let mut segs = 0u64;
            let mut last = u32::MAX;
            for &a in &sorted {
                let seg = a / WARP as u32;
                if segs == 0 || seg != last {
                    segs += 1;
                    last = seg;
                }
            }
            segs
        };
        // Without the `simd` feature the fast path is compiled out and
        // must decline every row.
        let want = if cfg!(feature = "simd") {
            Some(naive)
        } else {
            None
        };
        let fast = with_simd(true, || rows::full_warp_tx_fast(&sorted, buf.len()));
        assert_eq!(fast, want, "tx count {sorted:?}");
    }
    // Out-of-bounds and non-monotonic rows must decline (scalar path owns
    // fault attribution and sorting), never miscount.
    let oob: [u32; WARP] = std::array::from_fn(|l| if l == 31 { 4096 } else { l as u32 });
    let neg: [u32; WARP] = std::array::from_fn(|l| if l == 7 { -3i32 as u32 } else { l as u32 });
    let desc_segs: [u32; WARP] = std::array::from_fn(|l| ((WARP - 1 - l) * 64) as u32);
    // Addresses descending *within one segment* still form a monotonic
    // segment row — one transaction, no sort needed.
    let desc_addrs: [u32; WARP] = std::array::from_fn(|l| (WARP - 1 - l) as u32);
    with_simd(true, || {
        assert_eq!(rows::full_warp_tx_fast(&oob, buf.len()), None, "oob lane");
        assert_eq!(
            rows::full_warp_tx_fast(&neg, buf.len()),
            None,
            "negative lane"
        );
        assert_eq!(
            rows::full_warp_tx_fast(&desc_segs, buf.len()),
            None,
            "descending segment row"
        );
        assert_eq!(
            rows::full_warp_tx_fast(&desc_addrs, buf.len()),
            if cfg!(feature = "simd") {
                Some(1)
            } else {
                None
            },
            "descending addresses, constant segment"
        );
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomised rows (raw bits, so every float class appears) through
    /// every row kernel: scalar and SIMD must agree bit-for-bit.
    #[test]
    fn random_rows_scalar_simd_bit_identical(
        bits in proptest::collection::vec(0u32..=u32::MAX, 4 * WARP),
        opcode in 0u8..21,
    ) {
        use BinOp::*;
        let mut scalar = vec![0u32; 8 * WARP];
        scalar[WARP..5 * WARP].copy_from_slice(&bits);
        let mut simd = scalar.clone();
        let run = |r: &mut [u32]| match opcode {
            0 => rows::bin_i(Add, r, 0, WARP, 2 * WARP),
            1 => rows::bin_i(Sub, r, 0, WARP, 2 * WARP),
            2 => rows::bin_i(Mul, r, 0, WARP, 2 * WARP),
            3 => rows::bin_i(Div, r, 0, WARP, 2 * WARP),
            4 => rows::bin_i(Rem, r, 0, WARP, 2 * WARP),
            5 => rows::bin_i(Min, r, 0, WARP, 2 * WARP),
            6 => rows::bin_i(Shl, r, 0, WARP, 2 * WARP),
            7 => rows::bin_i(Shr, r, 0, WARP, 2 * WARP),
            8 => rows::bin_f(Add, r, 0, WARP, 2 * WARP),
            9 => rows::bin_f(Sub, r, 0, WARP, 2 * WARP),
            10 => rows::bin_f(Mul, r, 0, WARP, 2 * WARP),
            11 => rows::bin_f(Div, r, 0, WARP, 2 * WARP),
            12 => rows::bin_f(Min, r, 0, WARP, 2 * WARP),
            13 => rows::bin_f(Max, r, 0, WARP, 2 * WARP),
            14 => rows::mad_i(r, 0, WARP, 2 * WARP, 3 * WARP),
            15 => rows::mad_f(r, 0, WARP, 2 * WARP, 3 * WARP),
            16 => rows::cvt_if(r, 0, WARP),
            17 => rows::set_p_f(CmpOp::Lt, r, 0, WARP, 2 * WARP),
            18 => rows::mad2_i(r, 0, WARP, 2 * WARP, 3 * WARP, 5 * WARP, 0, WARP, 4 * WARP),
            19 => rows::mul_add_f(r, 0, WARP, 2 * WARP, 5 * WARP, 0, 3 * WARP),
            _ => rows::mad2_i_min(
                r, 0, WARP, 2 * WARP, 3 * WARP, 5 * WARP, 0, WARP, 2 * WARP, 6 * WARP, 0,
                5 * WARP,
            ),
        };
        with_simd(false, || run(&mut scalar));
        with_simd(true, || run(&mut simd));
        prop_assert_eq!(scalar, simd);
    }
}

/// Run one filter exhaustively on an engine with fusion on or off.
fn run_filter(
    engine: ExecEngine,
    fusion: bool,
    app: &isp_filters::App,
    pattern: BorderPattern,
) -> Outcome {
    let e = Engine::with_fusion(DeviceSpec::gtx680(), engine, fusion);
    let source = isp_exec::bench_image(64);
    e.run_on(
        &Request::paper(
            app.clone(),
            pattern,
            64,
            Policy::AlwaysIsp(Variant::IspBlock),
        )
        .exhaustive(),
        &source,
    )
    .unwrap_or_else(|e| panic!("{} {pattern}: {e}", app.name))
}

/// Assert two outcomes are observationally identical.
fn assert_outcomes_equal(a: &Outcome, b: &Outcome, label: &str) {
    assert_eq!(a.counters, b.counters, "{label}: counters");
    assert_eq!(a.total_cycles, b.total_cycles, "{label}: cycles");
    assert_eq!(a.stage_variants, b.stage_variants, "{label}: variants");
    assert_eq!(a.per_region, b.per_region, "{label}: per-region");
    let (pa, pb) = (a.image.as_ref().unwrap(), b.image.as_ref().unwrap());
    assert_eq!(pa.raw(), pb.raw(), "{label}: pixels");
}

/// Fusion is a pure dispatch optimisation: for every filter, pattern, and
/// engine, a fused run must be observationally identical to an unfused
/// one — and identical across engines — with SIMD forced both off and on
/// (which also exercises the warp-batched block path end-to-end:
/// divergent borders bail to the sequential interpreter, interiors batch).
#[test]
fn fusion_and_simd_observationally_neutral_all_filters() {
    for &simd in &[false, true] {
        with_simd(simd, || {
            for app in &isp_filters::apps::all_apps() {
                for pattern in BorderPattern::ALL {
                    let base = run_filter(ExecEngine::Reference, false, app, pattern);
                    for engine in [
                        ExecEngine::Reference,
                        ExecEngine::Decoded,
                        ExecEngine::Replay,
                    ] {
                        for fusion in [false, true] {
                            if engine == ExecEngine::Reference && !fusion {
                                continue;
                            }
                            let got = run_filter(engine, fusion, app, pattern);
                            assert_outcomes_equal(
                                &base,
                                &got,
                                &format!(
                                    "{} {pattern} {engine:?} fusion={fusion} simd={simd}",
                                    app.name
                                ),
                            );
                        }
                    }
                }
            }
        });
    }
}

/// The rendered `==PROF==` report (counters, cycles, occupancy, derived
/// rates) and per-class attribution must not move when fusion or SIMD
/// toggles. Uses a divergent kernel so the batched path both succeeds
/// (interior warps) and bails (divergent warps) within one launch.
#[test]
fn prof_report_neutral_under_fusion_and_simd() {
    use isp_ir::{IrBuilder, SReg, Ty, UnOp};
    use isp_sim::{DeviceBuffer, ExecStrategy, Gpu, LaunchConfig, ParamValue, SimMode};

    let mut b = IrBuilder::new("prof_neutral", 2);
    let pw = b.param("width", Ty::S32);
    let body = b.create_block("body");
    let odd = b.create_block("odd");
    let exit = b.create_block("exit");
    let tx = b.sreg(SReg::TidX);
    let ty = b.sreg(SReg::TidY);
    let bx = b.sreg(SReg::CtaIdX);
    let ntx = b.sreg(SReg::NTidX);
    let gx = b.mad(Ty::S32, bx, ntx, tx);
    let w = b.ld_param(pw);
    let addr = b.mad(Ty::S32, ty, w, gx);
    let v = b.ld(Ty::F32, 0, addr);
    let v2 = b.bin(BinOp::Mul, Ty::F32, v, 0.5f32);
    let v3 = b.bin(BinOp::Add, Ty::F32, v2, 1.25f32);
    let bit = b.bin(BinOp::And, Ty::S32, gx, 1);
    let c = b.setp(CmpOp::Eq, bit, 0);
    b.cond_br(c, body, odd);
    b.switch_to(body);
    b.st(1, addr, v3);
    b.br(exit);
    b.switch_to(odd);
    let neg = b.un(UnOp::Neg, Ty::F32, v3);
    b.st(1, addr, neg);
    b.br(exit);
    b.switch_to(exit);
    b.ret();
    let kernel = b.finish();

    let cfg = LaunchConfig {
        grid: (2, 2),
        block: (32, 4),
    };
    let n = 2 * 32 * 2 * 4;
    let input: Vec<f32> = (0..n).map(|i| (i % 19) as f32 * 0.25 - 2.0).collect();
    let params = [ParamValue::I32(64)];
    let render = |fusion: bool| {
        let device = DeviceSpec::gtx680();
        let gpu = Gpu::new(device.clone()).with_fusion(fusion);
        let mut bufs = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(n)];
        let report = gpu
            .launch_engine(
                &kernel,
                cfg,
                &params,
                &mut bufs,
                SimMode::Exhaustive,
                ExecStrategy::Parallel,
                ExecEngine::Decoded,
            )
            .unwrap();
        let prof = isp_sim::profile::format_report(&device, "prof_neutral", &report);
        assert!(prof.starts_with("==PROF=="), "report header");
        (
            prof,
            bufs[1]
                .to_f32()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>(),
        )
    };
    let base = with_simd(false, || render(false));
    for &(fusion, simd) in &[(true, false), (false, true), (true, true)] {
        let got = with_simd(simd, || render(fusion));
        assert_eq!(base.0, got.0, "==PROF== text, fusion={fusion} simd={simd}");
        assert_eq!(base.1, got.1, "pixels, fusion={fusion} simd={simd}");
    }
}
