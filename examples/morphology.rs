//! Morphology scenario: opening/closing/gradient built from min/max stencils
//! (the DSL's non-additive fused reductions), run under the isp+m policy —
//! showing the framework extends beyond the paper's five convolution-style
//! apps without any new compiler work.
//!
//! Run with: `cargo run --release --example morphology`

use isp_border::prelude::*;
use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_filters::morphology;
use isp_sim::{DeviceSpec, Gpu};

fn main() {
    // Speckled input: bright dust on a dark field plus structure.
    let gen = ImageGenerator::new(5);
    let mut scene = gen.shapes::<f32>(256, 192);
    let noise = gen.uniform_noise::<f32>(256, 192);
    for y in 0..192 {
        for x in 0..256 {
            if noise.get(x, y) > 0.995 {
                scene.set(x, y, 1.0); // dust speck
            }
        }
    }

    let gpu = Gpu::new(DeviceSpec::rtx2080());
    let border = BorderSpec::clamp();

    for (name, pipeline) in [
        ("opening", morphology::opening(5)),
        ("closing", morphology::closing(5)),
        ("gradient", morphology::gradient(3)),
    ] {
        let compiled = pipeline.compile(&Compiler::new(), border, Variant::IspBlock);
        let golden = pipeline.reference(&scene, border);
        let run = pipeline
            .run(
                &gpu,
                &compiled,
                &scene,
                border,
                (32, 4),
                Policy::Model(Variant::IspBlock),
                ExecMode::Exhaustive,
            )
            .expect("morphology run");
        let out = run.image.unwrap();
        let diff = out.max_abs_diff(&golden).unwrap();
        assert!(diff < 1e-4);
        println!(
            "{name:>9}: {} kernels, variants {:?}, {} cycles, verified (|diff| = {diff:e})",
            pipeline.stages.len(),
            run.stage_variants,
            run.total_cycles
        );
        let out_dir = std::path::Path::new("target/examples");
        std::fs::create_dir_all(out_dir).unwrap();
        isp_image::io::write_pgm(&out, out_dir.join(format!("morph_{name}.pgm"))).unwrap();
    }
    println!("\nwrote target/examples/morph_*.pgm");
}
