//! Block-size autotuning: let the model rank launch configurations and
//! verify its top pick against simulated measurements.
//!
//! Run with: `cargo run --release --example autotune [app] [size]`

use isp_bench::report::Table;
use isp_core::Variant;
use isp_dsl::runner::{run_filter, ExecMode};
use isp_dsl::tune::{tune_block_size, DEFAULT_CANDIDATES};
use isp_dsl::Compiler;
use isp_image::{BorderPattern, ImageGenerator};
use isp_sim::{DeviceSpec, Gpu};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "laplace".into());
    let size: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let spec = match app.as_str() {
        "gaussian" => isp_filters::gaussian::spec(3),
        "laplace" => isp_filters::laplace::spec(5),
        "bilateral" => isp_filters::bilateral::spec(13),
        other => panic!("unknown app '{other}' (gaussian/laplace/bilateral)"),
    };
    let user: Vec<f32> = spec
        .user_params
        .iter()
        .map(|_| isp_filters::bilateral::range_param(isp_filters::bilateral::DEFAULT_SIGMA_R))
        .collect();
    let pattern = BorderPattern::Repeat;
    let img = ImageGenerator::new(42).natural::<f32>(size, size);

    for device in DeviceSpec::all() {
        let gpu = Gpu::new(device.clone());
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
        let ranked = tune_block_size(&gpu, &ck, size, size, &DEFAULT_CANDIDATES);

        println!(
            "== {} / {} {}x{} ({pattern}) ==",
            device.name, spec.name, size, size
        );
        let mut t = Table::new(&[
            "rank",
            "block",
            "variant",
            "predicted cost",
            "occ",
            "gain G",
            "measured Mcyc",
        ]);
        for (rank, p) in ranked.iter().enumerate() {
            // Measure the candidate for comparison (sampled mode).
            let measured = run_filter(
                &gpu,
                &ck,
                p.variant,
                &[&img],
                &user,
                0.0,
                p.block,
                ExecMode::Sampled,
            )
            .map(|o| format!("{:.3}", o.report.timing.cycles as f64 / 1e6))
            .unwrap_or_else(|e| format!("n/a ({e})"));
            t.row(&[
                (rank + 1).to_string(),
                format!("{}x{}", p.block.0, p.block.1),
                p.variant.name().into(),
                format!("{:.3e}", p.predicted_cost),
                format!("{:.3}", p.occupancy),
                format!("{:.3}", p.gain),
                measured,
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Check: the model's #1 pick should be at or near the measured minimum\n\
         — the paper's 32x4 default is usually on the podium but not always #1."
    );
}
