//! Edge detection scenario: the three-kernel Sobel pipeline on a synthetic
//! test card, run end-to-end on the simulated GPU under each variant policy,
//! with outputs written as PGM images.
//!
//! Run with: `cargo run --release --example edge_detection`

use isp_border::prelude::*;
use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_sim::{DeviceSpec, Gpu};

fn main() {
    let scene = ImageGenerator::new(99).shapes::<f32>(384, 256);
    let pipeline = isp_filters::sobel::pipeline();
    let border = BorderSpec::clamp();
    let gpu = Gpu::new(DeviceSpec::rtx2080());

    let golden = pipeline.reference(&scene, border);
    let compiled = pipeline.compile(&Compiler::new(), border, Variant::IspBlock);

    println!(
        "Sobel pipeline ({} kernels) on a 384x256 test card:\n",
        pipeline.stages.len()
    );
    for policy in [
        Policy::Naive,
        Policy::AlwaysIsp(Variant::IspBlock),
        Policy::Model(Variant::IspBlock),
    ] {
        let run = pipeline
            .run(
                &gpu,
                &compiled,
                &scene,
                border,
                (32, 4),
                policy,
                ExecMode::Exhaustive,
            )
            .expect("pipeline run");
        let img = run.image.as_ref().unwrap();
        let diff = img.max_abs_diff(&golden).unwrap();
        println!(
            "{policy:?}: {} total cycles, stage variants {:?}, max |diff| = {diff:e}",
            run.total_cycles, run.stage_variants
        );
        assert!(diff < 1e-4);
    }

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    isp_image::io::write_pgm(&scene, out_dir.join("sobel_input.pgm")).unwrap();
    // Normalise edge magnitudes into [0,1] for viewing.
    let (_, hi) = golden.min_max();
    let vis = golden.map(|v| v / hi.max(1e-6));
    isp_image::io::write_pgm(&vis, out_dir.join("sobel_edges.pgm")).unwrap();
    println!("\nwrote target/examples/sobel_input.pgm and sobel_edges.pgm");
}
