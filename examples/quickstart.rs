//! Quickstart: write a filter in the DSL, compile it with automatic border
//! handling and iteration space partitioning, run all variants on the
//! simulated GPU, and verify they agree with the host reference.
//!
//! Run with: `cargo run --release --example quickstart`

use isp_border::prelude::*;
use isp_core::Variant;
use isp_dsl::eval::reference_run;
use isp_dsl::runner::{plan_for, run_filter, ExecMode};
use isp_dsl::{Compiler, KernelSpec};
use isp_sim::{DeviceSpec, Gpu};

fn main() {
    // 1. A test image (any `Image<f32>`; PGM loading also works).
    let image = ImageGenerator::new(7).natural::<f32>(256, 256);

    // 2. Write the filter once: a 5x5 Gaussian, as a mask convolution.
    let mask = Mask::gaussian(5, 1.1).expect("odd mask");
    let spec = KernelSpec::convolution("gauss5", &mask);
    println!("kernel '{}' window {:?}", spec.name, spec.window());

    // 3. Pick a border handling pattern and compile. The compiler produces
    //    the naive baseline AND the ISP fat kernel (nine specialised
    //    regions + the Listing 3 switching cascade) in one call.
    let compiled = Compiler::new().compile(&spec, BorderPattern::Mirror, Variant::IspBlock);
    println!(
        "compiled: naive {} instrs / {} regs, isp {} instrs / {} regs",
        compiled.naive.static_histogram.total(),
        compiled.naive.regs.data_regs,
        compiled.isp.as_ref().unwrap().static_histogram.total(),
        compiled.isp.as_ref().unwrap().regs.data_regs,
    );

    // 4. Run on the simulated GTX680 and check against the host reference.
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let golden = reference_run(&spec, &[&image], BorderSpec::mirror(), &[]);
    for variant in [Variant::Naive, Variant::IspBlock] {
        let out = run_filter(
            &gpu,
            &compiled,
            variant,
            &[&image],
            &[],
            0.0,
            (32, 4),
            ExecMode::Exhaustive,
        )
        .expect("launch");
        let diff = out.image.as_ref().unwrap().max_abs_diff(&golden).expect("same size");
        println!(
            "{variant:>8}: {:>9} warp-instructions, {:>6} cycles/K, max |diff| vs reference = {diff:e}",
            out.report.counters.warp_instructions,
            out.report.timing.cycles / 1000,
        );
        assert!(diff < 1e-4, "simulated GPU must match the reference");
    }

    // 5. Profile the ISP variant NVProf-style.
    let isp_run = run_filter(
        &gpu,
        &compiled,
        Variant::IspBlock,
        &[&image],
        &[],
        0.0,
        (32, 4),
        ExecMode::Exhaustive,
    )
    .expect("launch");
    println!(
        "\n{}",
        isp_sim::profile::format_report(gpu.device(), "gauss5_isp", &isp_run.report)
    );

    // 6. Ask the analytic model (Eq. 10) which variant to use at this size.
    let geom = isp_dsl::runner::geometry_for(&compiled, 256, 256, (32, 4));
    let plan = plan_for(&gpu, &compiled, &geom);
    println!(
        "model says: run '{}' (predicted gain G = {:.3})",
        plan.variant, plan.predicted_gain
    );

    // 7. Save the output for inspection.
    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join("quickstart_gauss5.pgm");
    isp_image::io::write_pgm(&golden, &path).expect("write pgm");
    println!("wrote {}", path.display());
}
