//! Quickstart: write a filter in the DSL, compile it through the execution
//! engine (automatic border handling + iteration space partitioning), run
//! all variants on the simulated GPU, and verify they agree with the host
//! reference.
//!
//! Run with: `cargo run --release --example quickstart`

use isp_border::prelude::*;
use isp_core::Variant;
use isp_dsl::eval::reference_run;
use isp_dsl::runner::ExecMode;
use isp_dsl::KernelSpec;
use isp_sim::DeviceSpec;

fn main() {
    // 1. A test image (any `Image<f32>`; PGM loading also works).
    let image = ImageGenerator::new(7).natural::<f32>(256, 256);

    // 2. Write the filter once: a 5x5 Gaussian, as a mask convolution.
    let mask = Mask::gaussian(5, 1.1).expect("odd mask");
    let spec = KernelSpec::convolution("gauss5", &mask);
    println!("kernel '{}' window {:?}", spec.name, spec.window());

    // 3. Grab the engine for the simulated GTX680 and compile. One call
    //    produces the naive baseline AND the ISP fat kernel (nine
    //    specialised regions + the Listing 3 switching cascade); the engine
    //    memoises it so later runs at other sizes compile nothing.
    let engine = Engine::global(&DeviceSpec::gtx680());
    let compiled = engine.compile(&spec, BorderPattern::Mirror, Variant::IspBlock);
    println!(
        "compiled: naive {} instrs / {} regs, isp {} instrs / {} regs",
        compiled.naive.static_histogram.total(),
        compiled.naive.regs.data_regs,
        compiled.isp.as_ref().unwrap().static_histogram.total(),
        compiled.isp.as_ref().unwrap().regs.data_regs,
    );

    // 4. Run on the simulator and check against the host reference.
    let golden = reference_run(&spec, &[&image], BorderSpec::mirror(), &[]);
    for variant in [Variant::Naive, Variant::IspBlock] {
        let out = engine
            .run_kernel(
                &compiled,
                variant,
                &[&image],
                &[],
                0.0,
                PAPER_BLOCK,
                ExecMode::Exhaustive,
            )
            .expect("launch");
        let diff = out
            .image
            .as_ref()
            .unwrap()
            .max_abs_diff(&golden)
            .expect("same size");
        println!(
            "{variant:>8}: {:>9} warp-instructions, {:>6} cycles/K, max |diff| vs reference = {diff:e}",
            out.report.counters.warp_instructions,
            out.report.timing.cycles / 1000,
        );
        assert!(diff < 1e-4, "simulated GPU must match the reference");
    }

    // 5. Profile the ISP variant NVProf-style.
    let isp_run = engine
        .run_kernel(
            &compiled,
            Variant::IspBlock,
            &[&image],
            &[],
            0.0,
            PAPER_BLOCK,
            ExecMode::Exhaustive,
        )
        .expect("launch");
    println!(
        "\n{}",
        isp_sim::profile::format_report(engine.device(), "gauss5_isp", &isp_run.report)
    );

    // 6. Ask the analytic model (Eq. 10) which variant to use at this size.
    //    The engine caches the decision per (kernel, geometry).
    let geom = isp_dsl::runner::geometry_for(&compiled, 256, 256, PAPER_BLOCK);
    let plan = engine.plan(&compiled, &geom);
    println!(
        "model says: run '{}' (predicted gain G = {:.3})",
        plan.variant, plan.predicted_gain
    );

    // 7. Whole-app measurement in one call: the paper's naive / isp / isp+m
    //    triple for Gaussian at this size, through the same caches.
    let sweep = Sweep::paper(
        isp_filters::by_name("gaussian").unwrap(),
        BorderPattern::Mirror,
        256,
    );
    let m = engine.measure(&sweep);
    println!(
        "gaussian app @256: S(isp) = {:.3}, S(isp+m) = {:.3}",
        m.speedup_isp, m.speedup_ispm
    );
    let stats = engine.cache_stats();
    println!(
        "engine caches: {} kernel compiles, {} kernel hits, {} plan evals, {} plan hits",
        stats.kernel_misses, stats.kernel_hits, stats.plan_misses, stats.plan_hits
    );

    // 8. Save the output for inspection.
    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join("quickstart_gauss5.pgm");
    isp_image::io::write_pgm(&golden, &path).expect("write pgm");
    println!("wrote {}", path.display());
}
