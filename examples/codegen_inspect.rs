//! Compiler inspection: print what the DSL compiler generates for one
//! kernel — the CUDA-like source of each variant (the paper's Listings 1, 3
//! and 5 shapes) and the PTX-like IR the simulator executes, plus per-region
//! statistics.
//!
//! Run with: `cargo run --release --example codegen_inspect`

use isp_core::Variant;
use isp_dsl::{cuda, Compiler, KernelSpec};
use isp_image::{BorderPattern, Mask};

fn main() {
    let spec = KernelSpec::convolution("gauss3", &Mask::gaussian(3, 0.85).unwrap());
    let pattern = BorderPattern::Repeat;

    println!("=============================================================");
    println!("CUDA-like source, naive variant (Listing 1 checks everywhere)");
    println!("=============================================================");
    println!("{}", cuda::emit_cuda(&spec, pattern, Variant::Naive));

    println!("=============================================================");
    println!("CUDA-like source, ISP variant (Listing 3 region switch)");
    println!("=============================================================");
    println!("{}", cuda::emit_cuda(&spec, pattern, Variant::IspBlock));

    println!("=============================================================");
    println!("CUDA-like source, warp-grained ISP (Listing 5)");
    println!("=============================================================");
    println!("{}", cuda::emit_cuda(&spec, pattern, Variant::IspWarp));

    let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
    println!("=============================================================");
    println!("PTX-like IR, naive variant (what the simulator executes)");
    println!("=============================================================");
    println!("{}", isp_ir::pretty::print_kernel(&ck.naive.kernel));

    let tiled = Compiler::new().compile_tiled(&spec, pattern, (32, 4));
    println!("=============================================================");
    println!("PTX-like IR, shared-memory tiled variant (32x4 blocks)");
    println!("=============================================================");
    println!("{}", isp_ir::pretty::print_kernel(&tiled.kernel));

    let isp = ck.isp.as_ref().unwrap();
    println!("=============================================================");
    println!("Per-region static instruction totals of the ISP fat kernel");
    println!("=============================================================");
    println!(
        "naive path: {} instructions, {} registers",
        ck.naive.static_histogram.total(),
        ck.naive.regs.data_regs
    );
    for (region, hist) in isp.region_histograms.as_ref().unwrap() {
        println!(
            "{:>5}: {:>4} instructions ({} arithmetic)",
            region.name(),
            hist.total(),
            hist.arithmetic_total()
        );
    }
    println!("fat kernel: {} registers", isp.regs.data_regs);
}
