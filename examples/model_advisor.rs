//! Model advisor: sweep image sizes and patterns for a chosen filter and
//! print, side by side, what the analytic model predicts (Eq. 10) and what
//! the simulator measures — the workflow a performance engineer would use to
//! decide border-handling strategy per deployment.
//!
//! Run with: `cargo run --release --example model_advisor [app]`

use isp_bench::report::Table;
use isp_bench::runner::{measure_app, Experiment};
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    let app_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "laplace".to_string());
    let app = isp_filters::by_name(&app_name).unwrap_or_else(|| {
        panic!("unknown app '{app_name}'; try gaussian/laplace/bilateral/sobel/night")
    });
    println!("Advisor for '{}': {}\n", app.name, app.description);

    for device in DeviceSpec::all() {
        println!("--- {} ---", device.name);
        let mut t = Table::new(&[
            "pattern",
            "size",
            "G (model)",
            "S (measured)",
            "model says",
            "measured best",
            "agree",
        ]);
        for pattern in BorderPattern::ALL {
            for size in [512usize, 1024, 2048, 4096] {
                let exp = Experiment::paper(device.clone(), app.clone(), pattern, size);
                let m = measure_app(&exp);
                let g = m.stage_gains.first().copied().unwrap_or(1.0);
                let model_isp = m.model_chose_isp();
                let measured_isp = m.isp_measured_better();
                t.row(&[
                    pattern.name().into(),
                    size.to_string(),
                    format!("{g:.3}"),
                    format!("{:.3}", m.speedup_isp),
                    if model_isp { "isp" } else { "naive" }.into(),
                    if measured_isp { "isp" } else { "naive" }.into(),
                    if model_isp == measured_isp {
                        "yes"
                    } else {
                        "NO"
                    }
                    .into(),
                ]);
            }
        }
        println!("{}", t.render());
    }
}
