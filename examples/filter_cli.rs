//! A small command-line filter tool — the "downstream user" face of the
//! library: read a PGM image (or generate a test image), run any of the
//! built-in applications on the simulated GPU with a chosen border pattern
//! and variant policy, and write the result as PGM.
//!
//! Usage:
//!   cargo run --release --example filter_cli -- \
//!       [--input img.pgm] [--app gaussian] [--pattern mirror] \
//!       [--policy model] [--device rtx2080] [--output out.pgm]

use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_image::{io, BorderPattern, BorderSpec, Image, ImageGenerator};
use isp_sim::{DeviceSpec, Gpu};

fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let app_name = arg("--app", "gaussian");
    let pattern: BorderPattern = arg("--pattern", "clamp").parse().expect("valid pattern");
    let policy_name = arg("--policy", "model");
    let device_name = arg("--device", "rtx2080");
    let output = arg("--output", "target/examples/filter_cli_out.pgm");
    let input_path = arg("--input", "");

    let app = isp_filters::by_name(&app_name).unwrap_or_else(|| {
        panic!("unknown app '{app_name}' (gaussian/laplace/bilateral/sobel/night)")
    });
    let device = match device_name.as_str() {
        "gtx680" => DeviceSpec::gtx680(),
        "rtx2080" => DeviceSpec::rtx2080(),
        other => panic!("unknown device '{other}' (gtx680/rtx2080)"),
    };
    let policy = match policy_name.as_str() {
        "naive" => Policy::Naive,
        "isp" => Policy::AlwaysIsp(Variant::IspBlock),
        "model" => Policy::Model(Variant::IspBlock),
        other => panic!("unknown policy '{other}' (naive/isp/model)"),
    };

    // Load or generate the input image, normalised to [0, 1].
    let source: Image<f32> = if input_path.is_empty() {
        println!("no --input given: generating a 512x512 test image");
        ImageGenerator::new(7).natural::<f32>(512, 512)
    } else {
        let img = io::read_pgm(&input_path).expect("readable PGM");
        println!("loaded {} ({}x{})", input_path, img.width(), img.height());
        img.map(|p| p as f32 / 255.0)
    };

    let border = BorderSpec::from_pattern(pattern);
    let gpu = Gpu::new(device.clone());
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let run = app
        .pipeline
        .run(
            &gpu,
            &compiled,
            &source,
            border,
            (32, 4),
            policy,
            ExecMode::Exhaustive,
        )
        .expect("pipeline run");
    println!(
        "{} on {} ({pattern}, policy {policy_name}): {:.3} simulated ms, stage variants {:?}",
        app.name,
        device.name,
        device.cycles_to_ms(run.total_cycles),
        run.stage_variants,
    );

    // Normalise for viewing and save.
    let img = run.image.expect("exhaustive run");
    let (lo, hi) = img.min_max();
    let vis = if hi > lo {
        img.map(|v| (v - lo) / (hi - lo))
    } else {
        img
    };
    if let Some(dir) = std::path::Path::new(&output).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    io::write_pgm(&vis, &output).expect("write output");
    println!("wrote {output}");
}
