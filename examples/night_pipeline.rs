//! Night-enhancement scenario: the paper's five-kernel pipeline (à-trous
//! denoising cascade + tone mapping) on a synthetic low-light scene, with
//! per-stage variant decisions from the analytic model.
//!
//! Run with: `cargo run --release --example night_pipeline`

use isp_border::prelude::*;
use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_sim::{DeviceSpec, Gpu};

fn main() {
    let scene = ImageGenerator::new(2024).night_scene::<f32>(320, 240, 12);
    println!(
        "input: 320x240 night scene, mean luminance {:.3}",
        scene.mean()
    );

    let pipeline = isp_filters::night::pipeline();
    let border = BorderSpec::mirror(); // medical/multiresolution-style mirroring
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let compiled = pipeline.compile(&Compiler::new(), border, Variant::IspBlock);

    println!("\nstages:");
    for (stage, ck) in pipeline.stages.iter().zip(&compiled) {
        let geom = isp_dsl::runner::geometry_for(ck, 320, 240, (32, 4));
        let plan = isp_dsl::runner::plan_for(&gpu, ck, &geom);
        println!(
            "  {:>10}  window {:>5?}  model gain G={:.3} -> {}",
            stage.spec.name,
            stage.spec.window(),
            plan.predicted_gain,
            plan.variant
        );
    }

    let run = pipeline
        .run(
            &gpu,
            &compiled,
            &scene,
            border,
            (32, 4),
            Policy::Model(Variant::IspBlock),
            ExecMode::Exhaustive,
        )
        .expect("pipeline run");
    let out = run.image.unwrap();
    println!(
        "\nisp+m run: {} cycles total, output mean luminance {:.3} (brightened from {:.3})",
        run.total_cycles,
        out.mean(),
        scene.mean()
    );

    let golden = pipeline.reference(&scene, border);
    let diff = out.max_abs_diff(&golden).unwrap();
    assert!(
        diff < 1e-4,
        "simulated pipeline must match the reference, diff {diff}"
    );
    println!("verified against host reference (max |diff| = {diff:e})");

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    isp_image::io::write_pgm(&scene, out_dir.join("night_input.pgm")).unwrap();
    isp_image::io::write_pgm(&out, out_dir.join("night_enhanced.pgm")).unwrap();
    println!("wrote target/examples/night_input.pgm and night_enhanced.pgm");
}
